//! Individual constraints and their classification.

use crate::attrs::{AttrId, ItemAttributes};
use gogreen_data::pattern::is_subset;
use gogreen_data::Item;
use std::cmp::Ordering;

/// The four constraint classes of the constrained-mining literature
/// (paper §2), plus `Hard` for predicates with none of the exploitable
/// properties.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintClass {
    /// Violated by a pattern ⇒ violated by every superset.
    AntiMonotone,
    /// Satisfied by a pattern ⇒ satisfied by every superset.
    Monotone,
    /// Expressible through set containment over explicit item sets.
    Succinct,
    /// Anti-/monotone under a suitable item ordering (e.g. `avg`).
    Convertible,
    /// No exploitable structure; evaluated as a post-filter.
    Hard,
}

/// A single constraint on patterns (beyond minimum support, which
/// [`crate::ConstraintSet`] carries separately).
#[derive(Debug, Clone, PartialEq)]
pub enum Constraint {
    /// `|X| ≤ k` — anti-monotone.
    MaxLength(usize),
    /// `|X| ≥ k` — monotone.
    MinLength(usize),
    /// `sum(attr over X) ≤ v` — anti-monotone when the attribute is
    /// non-negative, otherwise hard.
    MaxSum {
        /// The attribute column summed.
        attr: AttrId,
        /// The inclusive upper bound `v`.
        bound: f64,
    },
    /// `sum(attr over X) ≥ v` — monotone when the attribute is
    /// non-negative, otherwise hard.
    MinSum {
        /// The attribute column summed.
        attr: AttrId,
        /// The inclusive lower bound `v`.
        bound: f64,
    },
    /// `X ⊆ S` — succinct and anti-monotone. Items sorted ascending.
    SubsetOf(Vec<Item>),
    /// `S ⊆ X` — succinct and monotone. Items sorted ascending.
    ContainsAll(Vec<Item>),
    /// `X ∩ S ≠ ∅` — succinct and monotone.
    ContainsAny(Vec<Item>),
    /// `avg(attr over X) ≥ v` — convertible.
    AvgAtLeast {
        /// The attribute column averaged.
        attr: AttrId,
        /// The inclusive lower bound `v`.
        bound: f64,
    },
    /// `avg(attr over X) ≤ v` — convertible.
    AvgAtMost {
        /// The attribute column averaged.
        attr: AttrId,
        /// The inclusive upper bound `v`.
        bound: f64,
    },
}

/// Partial order between two constraints of the same kind: is `new`
/// tighter (solution space shrinks), looser, or equal?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tightness {
    /// Same solution space.
    Equal,
    /// `new` admits a subset of `old`'s solutions.
    Tighter,
    /// `new` admits a superset of `old`'s solutions.
    Looser,
    /// Different kinds or incomparable parameters.
    Incomparable,
}

impl Constraint {
    /// Normalizes item-set constraints (sorts their item lists). Called by
    /// [`crate::ConstraintSet`] on insertion.
    pub fn normalized(mut self) -> Self {
        match &mut self {
            Constraint::SubsetOf(s) | Constraint::ContainsAll(s) | Constraint::ContainsAny(s) => {
                s.sort_unstable();
                s.dedup();
            }
            _ => {}
        }
        self
    }

    /// The constraint's class, given the attribute table (sum constraints
    /// are only anti-/monotone for non-negative attributes).
    pub fn class(&self, attrs: &ItemAttributes) -> ConstraintClass {
        match self {
            Constraint::MaxLength(_) => ConstraintClass::AntiMonotone,
            Constraint::MinLength(_) => ConstraintClass::Monotone,
            Constraint::MaxSum { attr, .. } => {
                if attrs.is_non_negative(*attr) {
                    ConstraintClass::AntiMonotone
                } else {
                    ConstraintClass::Hard
                }
            }
            Constraint::MinSum { attr, .. } => {
                if attrs.is_non_negative(*attr) {
                    ConstraintClass::Monotone
                } else {
                    ConstraintClass::Hard
                }
            }
            Constraint::SubsetOf(_) | Constraint::ContainsAll(_) | Constraint::ContainsAny(_) => {
                ConstraintClass::Succinct
            }
            Constraint::AvgAtLeast { .. } | Constraint::AvgAtMost { .. } => {
                ConstraintClass::Convertible
            }
        }
    }

    /// Evaluates the constraint on a pattern (sorted ascending).
    pub fn satisfied(&self, items: &[Item], attrs: &ItemAttributes) -> bool {
        match self {
            Constraint::MaxLength(k) => items.len() <= *k,
            Constraint::MinLength(k) => items.len() >= *k,
            Constraint::MaxSum { attr, bound } => attrs.sum(*attr, items) <= *bound,
            Constraint::MinSum { attr, bound } => attrs.sum(*attr, items) >= *bound,
            Constraint::SubsetOf(s) => is_subset(items, s),
            Constraint::ContainsAll(s) => is_subset(s, items),
            Constraint::ContainsAny(s) => items.iter().any(|it| s.binary_search(it).is_ok()),
            Constraint::AvgAtLeast { attr, bound } => attrs.avg(*attr, items) >= *bound,
            Constraint::AvgAtMost { attr, bound } => attrs.avg(*attr, items) <= *bound,
        }
    }

    /// Compares the solution spaces of two constraints of the same kind.
    pub fn tightness_vs(&self, old: &Constraint) -> Tightness {
        use Constraint::*;
        fn from_ord(new_tighter: Ordering) -> Tightness {
            match new_tighter {
                Ordering::Less => Tightness::Tighter,
                Ordering::Equal => Tightness::Equal,
                Ordering::Greater => Tightness::Looser,
            }
        }
        match (self, old) {
            (MaxLength(a), MaxLength(b)) => from_ord(a.cmp(b)),
            (MinLength(a), MinLength(b)) => from_ord(b.cmp(a)),
            (MaxSum { attr: aa, bound: a }, MaxSum { attr: ab, bound: b }) if aa == ab => {
                from_ord(a.partial_cmp(b).unwrap_or(Ordering::Equal))
            }
            (MinSum { attr: aa, bound: a }, MinSum { attr: ab, bound: b }) if aa == ab => {
                from_ord(b.partial_cmp(a).unwrap_or(Ordering::Equal))
            }
            (AvgAtLeast { attr: aa, bound: a }, AvgAtLeast { attr: ab, bound: b }) if aa == ab => {
                from_ord(b.partial_cmp(a).unwrap_or(Ordering::Equal))
            }
            (AvgAtMost { attr: aa, bound: a }, AvgAtMost { attr: ab, bound: b }) if aa == ab => {
                from_ord(a.partial_cmp(b).unwrap_or(Ordering::Equal))
            }
            (SubsetOf(a), SubsetOf(b)) => set_tightness(a, b, true),
            (ContainsAll(a), ContainsAll(b)) => set_tightness(a, b, false),
            (ContainsAny(a), ContainsAny(b)) => set_tightness(a, b, true),
            _ => Tightness::Incomparable,
        }
    }
}

/// Tightness of item-set constraints: for `X ⊆ S` / `X ∩ S ≠ ∅` a smaller
/// `S` is tighter (`smaller_is_tighter = true`); for `S ⊆ X` a larger `S`
/// is tighter.
fn set_tightness(new: &[Item], old: &[Item], smaller_is_tighter: bool) -> Tightness {
    let new_sub = is_subset(new, old);
    let old_sub = is_subset(old, new);
    match (new_sub, old_sub) {
        (true, true) => Tightness::Equal,
        (true, false) => {
            if smaller_is_tighter {
                Tightness::Tighter
            } else {
                Tightness::Looser
            }
        }
        (false, true) => {
            if smaller_is_tighter {
                Tightness::Looser
            } else {
                Tightness::Tighter
            }
        }
        (false, false) => Tightness::Incomparable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(ids: &[u32]) -> Vec<Item> {
        ids.iter().map(|&i| Item(i)).collect()
    }

    #[test]
    fn length_constraints() {
        let attrs = ItemAttributes::new();
        assert!(Constraint::MaxLength(2).satisfied(&items(&[1, 2]), &attrs));
        assert!(!Constraint::MaxLength(1).satisfied(&items(&[1, 2]), &attrs));
        assert!(Constraint::MinLength(2).satisfied(&items(&[1, 2]), &attrs));
        assert!(!Constraint::MinLength(3).satisfied(&items(&[1, 2]), &attrs));
    }

    #[test]
    fn sum_constraints_and_classes() {
        let mut attrs = ItemAttributes::new();
        let price = attrs.add_column(vec![10.0, 20.0, 30.0], 0.0);
        let c = Constraint::MaxSum { attr: price, bound: 25.0 };
        assert!(c.satisfied(&items(&[0]), &attrs));
        assert!(!c.satisfied(&items(&[0, 1]), &attrs));
        assert_eq!(c.class(&attrs), ConstraintClass::AntiMonotone);
        let neg = attrs.add_column(vec![-1.0], 0.0);
        assert_eq!(
            Constraint::MaxSum { attr: neg, bound: 0.0 }.class(&attrs),
            ConstraintClass::Hard
        );
    }

    #[test]
    fn succinct_constraints() {
        let attrs = ItemAttributes::new();
        let s = Constraint::SubsetOf(items(&[1, 2, 3]));
        assert!(s.satisfied(&items(&[1, 3]), &attrs));
        assert!(!s.satisfied(&items(&[1, 4]), &attrs));
        let all = Constraint::ContainsAll(items(&[2]));
        assert!(all.satisfied(&items(&[1, 2]), &attrs));
        assert!(!all.satisfied(&items(&[1]), &attrs));
        let any = Constraint::ContainsAny(items(&[5, 6]));
        assert!(any.satisfied(&items(&[4, 5]), &attrs));
        assert!(!any.satisfied(&items(&[4]), &attrs));
    }

    #[test]
    fn avg_constraints() {
        let mut attrs = ItemAttributes::new();
        let price = attrs.add_column(vec![10.0, 30.0], 0.0);
        let c = Constraint::AvgAtLeast { attr: price, bound: 15.0 };
        assert!(c.satisfied(&items(&[0, 1]), &attrs)); // avg 20
        assert!(!c.satisfied(&items(&[0]), &attrs)); // avg 10
        assert_eq!(c.class(&attrs), ConstraintClass::Convertible);
    }

    #[test]
    fn tightness_of_length_bounds() {
        use Tightness::*;
        assert_eq!(Constraint::MaxLength(2).tightness_vs(&Constraint::MaxLength(3)), Tighter);
        assert_eq!(Constraint::MaxLength(3).tightness_vs(&Constraint::MaxLength(3)), Equal);
        assert_eq!(Constraint::MinLength(2).tightness_vs(&Constraint::MinLength(3)), Looser);
        assert_eq!(Constraint::MaxLength(2).tightness_vs(&Constraint::MinLength(2)), Incomparable);
    }

    #[test]
    fn tightness_of_item_sets() {
        use Tightness::*;
        let small = Constraint::SubsetOf(items(&[1, 2]));
        let big = Constraint::SubsetOf(items(&[1, 2, 3]));
        assert_eq!(small.tightness_vs(&big), Tighter);
        assert_eq!(big.tightness_vs(&small), Looser);
        let other = Constraint::SubsetOf(items(&[4]));
        assert_eq!(small.tightness_vs(&other), Incomparable);
        // ContainsAll: larger required set is tighter.
        let need1 = Constraint::ContainsAll(items(&[1]));
        let need12 = Constraint::ContainsAll(items(&[1, 2]));
        assert_eq!(need12.tightness_vs(&need1), Tighter);
    }

    #[test]
    fn normalized_sorts_sets() {
        let c = Constraint::SubsetOf(items(&[3, 1, 3])).normalized();
        assert_eq!(c, Constraint::SubsetOf(items(&[1, 3])));
    }

    #[test]
    fn avg_tightness_direction() {
        use Tightness::*;
        let a = AttrId(0);
        let lo = Constraint::AvgAtLeast { attr: a, bound: 10.0 };
        let hi = Constraint::AvgAtLeast { attr: a, bound: 20.0 };
        assert_eq!(hi.tightness_vs(&lo), Tighter);
        assert_eq!(lo.tightness_vs(&hi), Looser);
    }
}
