//! Item attribute tables for aggregate constraints.

use gogreen_data::Item;

/// Identifies one attribute column (e.g. *price*, *weight*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AttrId(pub u32);

/// Per-item numeric attributes backing aggregate constraints such as
/// `sum(X.price) ≤ v` or `avg(X.price) ≥ v`.
///
/// Columns are dense vectors indexed by item id; items beyond a column's
/// length take that column's default value.
#[derive(Debug, Clone, Default)]
pub struct ItemAttributes {
    columns: Vec<Column>,
}

#[derive(Debug, Clone)]
struct Column {
    values: Vec<f64>,
    default: f64,
}

impl ItemAttributes {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a column with per-item `values` (indexed by item id) and a
    /// `default` for items beyond the vector. Returns the column's id.
    pub fn add_column(&mut self, values: Vec<f64>, default: f64) -> AttrId {
        self.columns.push(Column { values, default });
        AttrId(self.columns.len() as u32 - 1)
    }

    /// The value of `attr` for `item`.
    ///
    /// # Panics
    ///
    /// Panics on an unknown `attr` id.
    pub fn value(&self, attr: AttrId, item: Item) -> f64 {
        let col = &self.columns[attr.0 as usize];
        col.values.get(item.index()).copied().unwrap_or(col.default)
    }

    /// Sum of `attr` over `items`.
    pub fn sum(&self, attr: AttrId, items: &[Item]) -> f64 {
        items.iter().map(|&it| self.value(attr, it)).sum()
    }

    /// Mean of `attr` over `items` (0 for the empty slice).
    pub fn avg(&self, attr: AttrId, items: &[Item]) -> f64 {
        if items.is_empty() {
            0.0
        } else {
            self.sum(attr, items) / items.len() as f64
        }
    }

    /// Minimum of `attr` over `items` (+∞ for the empty slice).
    pub fn min(&self, attr: AttrId, items: &[Item]) -> f64 {
        items.iter().map(|&it| self.value(attr, it)).fold(f64::INFINITY, f64::min)
    }

    /// True when every value of `attr` is non-negative — the precondition
    /// under which `sum ≤ v` is anti-monotone.
    pub fn is_non_negative(&self, attr: AttrId) -> bool {
        let col = &self.columns[attr.0 as usize];
        col.default >= 0.0 && col.values.iter().all(|&v| v >= 0.0)
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> (ItemAttributes, AttrId) {
        let mut t = ItemAttributes::new();
        let price = t.add_column(vec![10.0, 20.0, 30.0], 5.0);
        (t, price)
    }

    #[test]
    fn value_with_default() {
        let (t, price) = table();
        assert_eq!(t.value(price, Item(1)), 20.0);
        assert_eq!(t.value(price, Item(99)), 5.0);
    }

    #[test]
    fn aggregates() {
        let (t, price) = table();
        let items = [Item(0), Item(2)];
        assert_eq!(t.sum(price, &items), 40.0);
        assert_eq!(t.avg(price, &items), 20.0);
        assert_eq!(t.min(price, &items), 10.0);
        assert_eq!(t.avg(price, &[]), 0.0);
        assert_eq!(t.min(price, &[]), f64::INFINITY);
    }

    #[test]
    fn non_negative_check() {
        let mut t = ItemAttributes::new();
        let pos = t.add_column(vec![1.0, 0.0], 0.0);
        let neg = t.add_column(vec![1.0, -2.0], 0.0);
        assert!(t.is_non_negative(pos));
        assert!(!t.is_non_negative(neg));
    }

    #[test]
    fn multiple_columns_are_independent() {
        let mut t = ItemAttributes::new();
        let a = t.add_column(vec![1.0], 0.0);
        let b = t.add_column(vec![100.0], 0.0);
        assert_eq!(t.value(a, Item(0)), 1.0);
        assert_eq!(t.value(b, Item(0)), 100.0);
        assert_eq!(t.num_columns(), 2);
    }
}
