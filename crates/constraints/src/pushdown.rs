//! Pushing constraints into projected-database mining.
//!
//! Anti-monotone constraints can prune the depth-first search: once a
//! prefix violates one, no extension can recover, so the whole subtree is
//! skipped. Succinct `X ⊆ S` constraints go further and shrink the F-list
//! itself. Monotone/convertible/hard constraints are left to
//! post-filtering (integrating them more deeply is the province of the
//! constrained miners the paper cites [12, 14], not of the recycling
//! technique).

use crate::attrs::ItemAttributes;
use crate::constraint::{Constraint, ConstraintClass};
use crate::set::ConstraintSet;
use gogreen_data::{Item, SearchPrune};
use gogreen_util::FxHashSet;

/// Prune hooks derived from a [`ConstraintSet`], consulted by miners.
#[derive(Debug, Clone)]
pub struct Pushdown {
    /// Longest prefix worth extending (from `MaxLength`), if bounded.
    max_length: Option<usize>,
    /// Per-item attribute budgets (from non-negative `MaxSum`).
    sum_budgets: Vec<(crate::AttrId, f64)>,
    /// Item whitelist (from `SubsetOf`), if any.
    allowed: Option<FxHashSet<Item>>,
}

impl Pushdown {
    /// Extracts the pushable parts of `cs`.
    pub fn from_constraints(cs: &ConstraintSet, attrs: &ItemAttributes) -> Self {
        let mut max_length = None;
        let mut sum_budgets = Vec::new();
        let mut allowed: Option<FxHashSet<Item>> = None;
        for c in cs.others() {
            match c {
                Constraint::MaxLength(k) => {
                    max_length = Some(max_length.map_or(*k, |m: usize| m.min(*k)));
                }
                Constraint::MaxSum { attr, bound }
                    if c.class(attrs) == ConstraintClass::AntiMonotone =>
                {
                    sum_budgets.push((*attr, *bound));
                }
                Constraint::SubsetOf(s) => {
                    let set: FxHashSet<Item> = s.iter().copied().collect();
                    allowed = Some(match allowed {
                        None => set,
                        Some(prev) => prev.intersection(&set).copied().collect(),
                    });
                }
                _ => {}
            }
        }
        Pushdown { max_length, sum_budgets, allowed }
    }

    /// A pushdown that never prunes.
    pub fn none() -> Self {
        Pushdown { max_length: None, sum_budgets: Vec::new(), allowed: None }
    }

    /// True when `item` may appear in any output pattern (F-list filter).
    pub fn item_allowed(&self, item: Item) -> bool {
        self.allowed.as_ref().is_none_or(|s| s.contains(&item))
    }

    /// True when a prefix of length `len` may still be extended.
    pub fn may_extend(&self, len: usize) -> bool {
        self.max_length.is_none_or(|m| len < m)
    }

    /// True when a pattern (sorted items) passes all pushed anti-monotone
    /// checks — used both as an in-search prune and a final guard.
    pub fn prefix_ok(&self, items: &[Item], attrs: &ItemAttributes) -> bool {
        if let Some(m) = self.max_length {
            if items.len() > m {
                return false;
            }
        }
        if let Some(s) = &self.allowed {
            if !items.iter().all(|it| s.contains(it)) {
                return false;
            }
        }
        self.sum_budgets.iter().all(|&(attr, bound)| attrs.sum(attr, items) <= bound)
    }

    /// True when nothing is pushed (miners can skip all hook calls).
    pub fn is_empty(&self) -> bool {
        self.max_length.is_none() && self.sum_budgets.is_empty() && self.allowed.is_none()
    }

    /// Adapts this pushdown bundle (plus the attribute table its sum
    /// budgets refer to) into the [`SearchPrune`] hooks the miners
    /// consume.
    pub fn search<'a>(&'a self, attrs: &'a ItemAttributes) -> PrunedSearch<'a> {
        PrunedSearch { pushdown: self, attrs }
    }
}

/// [`SearchPrune`] view of a [`Pushdown`] bundle.
#[derive(Debug, Clone, Copy)]
pub struct PrunedSearch<'a> {
    pushdown: &'a Pushdown,
    attrs: &'a ItemAttributes,
}

impl SearchPrune for PrunedSearch<'_> {
    fn item_allowed(&self, item: Item) -> bool {
        self.pushdown.item_allowed(item)
    }

    fn may_extend(&self, len: usize) -> bool {
        self.pushdown.may_extend(len)
    }

    fn prefix_ok(&self, items: &[Item]) -> bool {
        // All pushed predicates are order-insensitive (length, item
        // membership, non-negative sums), so DFS push order is fine.
        if let Some(m) = self.pushdown.max_length {
            if items.len() > m {
                return false;
            }
        }
        if let Some(s) = &self.pushdown.allowed {
            if !items.iter().all(|it| s.contains(it)) {
                return false;
            }
        }
        self.pushdown.sum_budgets.iter().all(|&(attr, bound)| self.attrs.sum(attr, items) <= bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gogreen_data::MinSupport;

    fn items(ids: &[u32]) -> Vec<Item> {
        ids.iter().map(|&i| Item(i)).collect()
    }

    #[test]
    fn empty_set_pushes_nothing() {
        let attrs = ItemAttributes::new();
        let p = Pushdown::from_constraints(
            &ConstraintSet::support_only(MinSupport::Absolute(1)),
            &attrs,
        );
        assert!(p.is_empty());
        assert!(p.item_allowed(Item(0)));
        assert!(p.may_extend(1000));
        assert!(p.prefix_ok(&items(&[1, 2, 3]), &attrs));
    }

    #[test]
    fn max_length_pushes() {
        let attrs = ItemAttributes::new();
        let cs = ConstraintSet::support_only(MinSupport::Absolute(1))
            .with(Constraint::MaxLength(2))
            .with(Constraint::MaxLength(3));
        let p = Pushdown::from_constraints(&cs, &attrs);
        assert!(p.may_extend(1));
        assert!(!p.may_extend(2));
        assert!(p.prefix_ok(&items(&[1, 2]), &attrs));
        assert!(!p.prefix_ok(&items(&[1, 2, 3]), &attrs));
    }

    #[test]
    fn subset_of_whitelists_items() {
        let attrs = ItemAttributes::new();
        let cs = ConstraintSet::support_only(MinSupport::Absolute(1))
            .with(Constraint::SubsetOf(items(&[1, 2, 3])))
            .with(Constraint::SubsetOf(items(&[2, 3, 4])));
        let p = Pushdown::from_constraints(&cs, &attrs);
        assert!(p.item_allowed(Item(2)));
        assert!(!p.item_allowed(Item(1))); // intersection {2,3}
        assert!(!p.item_allowed(Item(4)));
    }

    #[test]
    fn negative_sums_are_not_pushed() {
        let mut attrs = ItemAttributes::new();
        let neg = attrs.add_column(vec![-1.0, 2.0], 0.0);
        let cs = ConstraintSet::support_only(MinSupport::Absolute(1))
            .with(Constraint::MaxSum { attr: neg, bound: 1.0 });
        let p = Pushdown::from_constraints(&cs, &attrs);
        assert!(p.is_empty());
    }

    #[test]
    fn sum_budget_prunes_prefix() {
        let mut attrs = ItemAttributes::new();
        let price = attrs.add_column(vec![10.0, 20.0, 30.0], 0.0);
        let cs = ConstraintSet::support_only(MinSupport::Absolute(1))
            .with(Constraint::MaxSum { attr: price, bound: 25.0 });
        let p = Pushdown::from_constraints(&cs, &attrs);
        assert!(p.prefix_ok(&items(&[0]), &attrs));
        assert!(!p.prefix_ok(&items(&[0, 1]), &attrs));
    }
}
