//! Batched-fleet workloads for the bench harness: a Zipf-skewed ξ
//! ladder over a preset's sweep, packaged as a [`QueryBatch`].
//!
//! The fleet models the paper's multi-user setting (§2): most users ask
//! cheap high-threshold questions, a few dig to the sweep floor. Ranks
//! are weighted 1/r over the sweep's thresholds (loosest-threshold rung
//! first), so a k=8 fleet over a 5-rung sweep allocates [3, 2, 1, 1, 1]
//! queries per rung — and ξ_min lands on the sweep floor, the same
//! ξ_new the solo bench rows mine at.

use crate::AlgoFamily;
use gogreen_constraints::ConstraintSet;
use gogreen_core::batch::{BatchQuery, QueryBatch};
use gogreen_data::{CountSink, MinSupport, PatternSink, TransactionDb};
use gogreen_util::pool::Parallelism;

/// Distributes `k` queries over `sweep`'s rungs with Zipf (1/r) weights
/// via largest-remainder rounding (ties to the earlier rung), then
/// expands to the per-query threshold ladder, sweep order preserved.
pub fn zipf_ladder(sweep: &[MinSupport], k: usize) -> Vec<MinSupport> {
    assert!(!sweep.is_empty(), "zipf_ladder needs a non-empty sweep");
    assert!(k > 0, "zipf_ladder needs at least one query");
    let n = sweep.len().min(k);
    let weights: Vec<f64> = (1..=n).map(|r| 1.0 / r as f64).collect();
    let total: f64 = weights.iter().sum();
    let quotas: Vec<f64> = weights.iter().map(|w| k as f64 * w / total).collect();
    let mut counts: Vec<usize> = quotas.iter().map(|q| q.floor() as usize).collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let (ra, rb) = (quotas[a] - quotas[a].floor(), quotas[b] - quotas[b].floor());
        rb.partial_cmp(&ra).expect("finite quotas").then(a.cmp(&b))
    });
    let mut leftover = k - counts.iter().sum::<usize>();
    for &i in order.iter().cycle() {
        if leftover == 0 {
            break;
        }
        counts[i] += 1;
        leftover -= 1;
    }
    sweep.iter().zip(&counts).flat_map(|(&xi, &c)| std::iter::repeat_n(xi, c)).collect()
}

/// A pure-support fleet over `ladder`, labelled `z0`, `z1`, … in ladder
/// order.
pub fn fleet(ladder: &[MinSupport]) -> QueryBatch {
    let mut batch = QueryBatch::new();
    for (i, &xi) in ladder.iter().enumerate() {
        batch.push(BatchQuery::new(format!("z{i}"), ConstraintSet::support_only(xi)));
    }
    batch
}

/// Runs the fleet batched on the raw database, counting (not
/// collecting) every member's stream; returns the total pattern count
/// across members as the bench checksum.
pub fn run_batched(
    db: &TransactionDb,
    family: AlgoFamily,
    ladder: &[MinSupport],
    par: Parallelism,
) -> u64 {
    let batch = fleet(ladder).with_parallelism(par);
    let mut sinks: Vec<CountSink> = (0..batch.len()).map(|_| CountSink::new()).collect();
    {
        let mut refs: Vec<&mut dyn PatternSink> =
            sinks.iter_mut().map(|s| s as &mut dyn PatternSink).collect();
        batch.run_into(db, family.key(), &mut refs).expect("bench batch");
    }
    sinks.iter().map(CountSink::count).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gogreen_miners::mine_apriori;

    fn pct(p: f64) -> MinSupport {
        MinSupport::percent(p)
    }

    #[test]
    fn zipf_allocation_over_five_rungs() {
        let sweep = vec![pct(4.0), pct(3.0), pct(2.0), pct(1.5), pct(1.0)];
        let ladder = zipf_ladder(&sweep, 8);
        let want =
            vec![pct(4.0), pct(4.0), pct(4.0), pct(3.0), pct(3.0), pct(2.0), pct(1.5), pct(1.0)];
        assert_eq!(ladder, want);
        // The floor rung is always populated: ξ_min = the sweep floor.
        assert_eq!(ladder.last(), sweep.last());
    }

    #[test]
    fn small_fleets_use_the_loosest_rungs() {
        let sweep = vec![pct(4.0), pct(3.0), pct(2.0)];
        assert_eq!(zipf_ladder(&sweep, 2), vec![pct(4.0), pct(3.0)]);
        assert_eq!(zipf_ladder(&sweep, 1), vec![pct(4.0)]);
    }

    #[test]
    fn batched_count_matches_solo_totals() {
        let db = TransactionDb::paper_example();
        let ladder = vec![MinSupport::Absolute(4), MinSupport::Absolute(2)];
        let solo: u64 = ladder.iter().map(|&xi| mine_apriori(&db, xi).len() as u64).sum();
        for family in AlgoFamily::with_vertical() {
            let got = run_batched(&db, family, &ladder, Parallelism::serial());
            assert_eq!(got, solo, "{family:?}");
        }
    }
}
