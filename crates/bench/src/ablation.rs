//! Ablations beyond the paper (indexed in DESIGN.md §6):
//!
//! 1. **Utility function** — MCP vs MLP vs support-only vs length-only.
//!    Separates MCP's two ingredients (exponential length term ×
//!    support).
//! 2. **`ξ_old` sensitivity** — the paper argues (§5) that a lower
//!    initial support leaves more to recycle. Sweep `ξ_old` at a fixed
//!    `ξ_new` and watch HM-MCP's time fall.
//! 3. **Lemma 3.1** — RP-Mine with and without the single-group
//!    shortcut.
//! 4. **Incremental recycling** (§2 extension case 1) — an evolving
//!    database mined after each update batch, recycling the previous
//!    round's patterns, against from-scratch re-mining.

use gogreen_core::incremental::IncrementalMiner;
use gogreen_core::recycle_vt::RecycleVt;
use gogreen_core::rpmine::RpMine;
use gogreen_core::twostep::TwoStepMiner;
use gogreen_core::{Compressor, RecyclingMiner, Strategy};
use gogreen_data::{CountSink, MinSupport};
use gogreen_datagen::{DatasetPreset, PresetKind};
use gogreen_miners::engine::vt::VtRepr;
use gogreen_miners::{mine_hmine, Eclat, Miner};
use gogreen_obs::metrics;
use gogreen_util::pool::Parallelism;
use gogreen_util::{Json, ToJson};
use std::time::Instant;

use crate::algo::AlgoFamily;

/// One strategy's outcome in the utility ablation.
#[derive(Debug, Clone)]
pub struct UtilityAblationRow {
    /// Strategy label (MCP/MLP/SUP/LEN).
    pub strategy: &'static str,
    /// Compression ratio achieved.
    pub ratio: f64,
    /// Compression seconds.
    pub compress_s: f64,
    /// HM-recycled mining seconds at the lowest sweep threshold.
    pub mine_s: f64,
}

impl ToJson for UtilityAblationRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("strategy", self.strategy.into()),
            ("ratio", self.ratio.into()),
            ("compress_s", self.compress_s.into()),
            ("mine_s", self.mine_s.into()),
        ])
    }
}

/// Utility-function ablation on one dataset.
pub fn utility_ablation(dataset: PresetKind, scale: f64) -> Vec<UtilityAblationRow> {
    let preset = DatasetPreset::new(dataset, scale);
    let db = preset.generate();
    let fp_old = mine_hmine(&db, preset.xi_old());
    let xi_new = *preset.sweep().last().expect("non-empty sweep");
    [Strategy::Mcp, Strategy::Mlp, Strategy::SupportOnly, Strategy::LengthOnly]
        .into_iter()
        .map(|strategy| {
            let (cdb, stats) = Compressor::new(strategy).compress_with_stats(&db, &fp_old);
            let run = AlgoFamily::HMine.run_recycled(&cdb, xi_new);
            UtilityAblationRow {
                strategy: strategy.suffix(),
                ratio: stats.ratio,
                compress_s: stats.duration.as_secs_f64(),
                mine_s: run.secs,
            }
        })
        .collect()
}

/// One `ξ_old` setting's outcome.
#[derive(Debug, Clone)]
pub struct XiOldRow {
    /// The initial threshold, as a multiple of the preset's `ξ_old`
    /// percentage.
    pub xi_old_pct: f64,
    /// Patterns available for recycling.
    pub recycled_patterns: usize,
    /// Seconds of the `ξ_old` pre-mining run.
    pub prep_s: f64,
    /// HM-MCP seconds at the fixed `ξ_new`.
    pub mine_s: f64,
    /// Compression ratio.
    pub ratio: f64,
}

impl ToJson for XiOldRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("xi_old_pct", self.xi_old_pct.into()),
            ("recycled_patterns", self.recycled_patterns.into()),
            ("prep_s", self.prep_s.into()),
            ("mine_s", self.mine_s.into()),
            ("ratio", self.ratio.into()),
        ])
    }
}

/// `ξ_old` sensitivity: fixes `ξ_new` at the preset's lowest sweep point
/// and recycles pattern sets mined at progressively lower `ξ_old`.
pub fn xi_old_sensitivity(dataset: PresetKind, scale: f64) -> Vec<XiOldRow> {
    let preset = DatasetPreset::new(dataset, scale);
    let db = preset.generate();
    let sweep = preset.sweep();
    let xi_new = *sweep.last().expect("non-empty sweep");
    // ξ_old candidates: the preset's own ξ_old plus the upper sweep
    // points (all still above ξ_new).
    let mut candidates = vec![preset.xi_old()];
    candidates.extend(sweep[..sweep.len() - 1].iter().copied());
    candidates
        .into_iter()
        .map(|xi_old| {
            let start = Instant::now();
            let fp_old = mine_hmine(&db, xi_old);
            let prep_s = start.elapsed().as_secs_f64();
            let (cdb, stats) = Compressor::new(Strategy::Mcp).compress_with_stats(&db, &fp_old);
            let run = AlgoFamily::HMine.run_recycled(&cdb, xi_new);
            XiOldRow {
                xi_old_pct: match xi_old {
                    MinSupport::Relative(f) => f * 100.0,
                    MinSupport::Absolute(n) => n as f64,
                },
                recycled_patterns: fp_old.len(),
                prep_s,
                mine_s: run.secs,
                ratio: stats.ratio,
            }
        })
        .collect()
}

/// Lemma 3.1 ablation outcome.
#[derive(Debug, Clone)]
pub struct LemmaAblation {
    /// RP-Mine seconds with the single-group shortcut.
    pub with_shortcut_s: f64,
    /// RP-Mine seconds without it.
    pub without_shortcut_s: f64,
    /// Patterns (identical in both runs).
    pub patterns: u64,
}

impl ToJson for LemmaAblation {
    fn to_json(&self) -> Json {
        Json::obj([
            ("with_shortcut_s", self.with_shortcut_s.into()),
            ("without_shortcut_s", self.without_shortcut_s.into()),
            ("patterns", self.patterns.into()),
        ])
    }
}

/// Measures the single-group shortcut's contribution on a dense dataset
/// (where whole groups dominate projections).
pub fn lemma_ablation(dataset: PresetKind, scale: f64) -> LemmaAblation {
    let preset = DatasetPreset::new(dataset, scale);
    let db = preset.generate();
    let fp_old = mine_hmine(&db, preset.xi_old());
    let cdb = Compressor::new(Strategy::Mcp).compress(&db, &fp_old);
    let xi_new = preset.sweep()[preset.sweep().len() / 2];

    let run = |shortcut: bool| -> (f64, u64) {
        let miner = RpMine { single_group_shortcut: shortcut };
        let mut sink = CountSink::new();
        let start = Instant::now();
        miner.mine_into(&cdb, xi_new, &mut sink);
        (start.elapsed().as_secs_f64(), sink.count())
    };
    let (with_shortcut_s, n1) = run(true);
    let (without_shortcut_s, n2) = run(false);
    assert_eq!(n1, n2, "shortcut changed the result set");
    LemmaAblation { with_shortcut_s, without_shortcut_s, patterns: n1 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utility_ablation_covers_four_strategies() {
        let rows = utility_ablation(PresetKind::Connect4, 0.001);
        assert_eq!(rows.len(), 4);
        let labels: Vec<_> = rows.iter().map(|r| r.strategy).collect();
        assert_eq!(labels, vec!["MCP", "MLP", "SUP", "LEN"]);
        assert!(rows.iter().all(|r| r.ratio > 0.0 && r.ratio <= 1.0));
    }

    #[test]
    fn xi_old_rows_relax_downward() {
        let rows = xi_old_sensitivity(PresetKind::Connect4, 0.001);
        assert!(rows.len() >= 2);
        // Lower ξ_old ⇒ at least as many recycled patterns.
        assert!(rows.windows(2).all(|w| w[0].xi_old_pct >= w[1].xi_old_pct));
        assert!(rows.windows(2).all(|w| w[0].recycled_patterns <= w[1].recycled_patterns));
    }

    #[test]
    fn compress_kernel_rows_agree() {
        let rows = compress_kernel_experiment(PresetKind::Connect4, 0.001);
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].kernel, "linear");
        assert!(rows.iter().all(|r| r.groups == rows[0].groups));
        assert!(rows.iter().all(|r| r.secs >= 0.0));
    }

    #[test]
    fn mine_par_rows_agree_across_engines_and_threads() {
        let rows = mine_par_experiment(PresetKind::Connect4, 0.001);
        // 3 families × {fresh, recycled} × 4 thread counts.
        assert_eq!(rows.len(), 24);
        assert!(rows.iter().all(|r| r.patterns == rows[0].patterns));
        assert!(rows.iter().all(|r| r.secs >= 0.0));
    }

    #[test]
    fn lemma_ablation_is_exact() {
        let a = lemma_ablation(PresetKind::Connect4, 0.001);
        assert!(a.patterns > 0);
        assert!(a.with_shortcut_s >= 0.0 && a.without_shortcut_s >= 0.0);
    }

    #[test]
    fn vt_repr_ablation_rows_agree_across_modes() {
        let rows = vt_repr_ablation(PresetKind::Connect4, 0.001);
        // 4 modes × {raw, MCP}.
        assert_eq!(rows.len(), 8);
        assert!(rows.iter().all(|r| r.patterns == rows[0].patterns));
        // Each forced mode accounts its traffic in its own unit: pure
        // bitmap scans no list elements, pure tid-list runs count list
        // elements, and forced modes never switch representation.
        for r in &rows {
            match r.mode {
                "bitmap" => {
                    assert_eq!(r.tidlist_elems + r.diffset_words, 0, "bitmap mode scanned lists")
                }
                "tidlist" => {
                    assert_eq!(r.bitmap_words + r.diffset_words, 0, "tidlist scanned {r:?}")
                }
                // Forced diffset roots as tid-lists and goes
                // differential from depth 1, so it touches no bitmap
                // words but does record the root→depth-1 switches.
                "diffset" => assert_eq!(r.bitmap_words, 0, "diffset scanned bitmaps {r:?}"),
                _ => {}
            }
            if matches!(r.mode, "bitmap" | "tidlist") {
                assert_eq!(r.repr_switches, 0, "forced mode switched: {r:?}");
            }
        }
    }
}

/// One update batch's outcome in the incremental experiment.
#[derive(Debug, Clone)]
pub struct IncrementalRow {
    /// Tuples in the database after this batch.
    pub tuples: usize,
    /// Recycled (incremental) mining seconds.
    pub recycled_s: f64,
    /// From-scratch mining seconds.
    pub scratch_s: f64,
    /// Patterns found (identical by construction).
    pub patterns: usize,
}

impl ToJson for IncrementalRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("tuples", self.tuples.into()),
            ("recycled_s", self.recycled_s.into()),
            ("scratch_s", self.scratch_s.into()),
            ("patterns", self.patterns.into()),
        ])
    }
}

/// Incremental recycling across growing data: the database doubles in
/// four batches; each round recycles the previous round's patterns.
pub fn incremental_experiment(dataset: PresetKind, scale: f64) -> Vec<IncrementalRow> {
    let preset = DatasetPreset::new(dataset, scale);
    let full = preset.generate();
    let all: Vec<_> =
        full.iter().map(|t| gogreen_data::Transaction::from_sorted_unchecked(t.to_vec())).collect();
    let half = all.len() / 2;
    let xi = preset.sweep()[1];
    let mut inc =
        IncrementalMiner::new(gogreen_data::TransactionDb::from_transactions(all[..half].to_vec()));
    let mut rows = Vec::new();
    // Initial round, then four growth batches.
    let batch = (all.len() - half) / 4;
    let mut next = half;
    loop {
        let start = Instant::now();
        let recycled = inc.mine(xi);
        let recycled_s = start.elapsed().as_secs_f64();
        let start = Instant::now();
        let scratch = mine_hmine(inc.db(), xi);
        let scratch_s = start.elapsed().as_secs_f64();
        assert!(recycled.same_patterns_as(&scratch), "incremental mismatch");
        rows.push(IncrementalRow {
            tuples: inc.db().len(),
            recycled_s,
            scratch_s,
            patterns: recycled.len(),
        });
        if next >= all.len() {
            break;
        }
        let end = (next + batch).min(all.len());
        inc.insert(all[next..end].iter().cloned());
        next = end;
    }
    rows
}

/// One threshold's outcome in the two-step experiment.
#[derive(Debug, Clone)]
pub struct TwoStepRow {
    /// Target `ξ` as a percentage.
    pub target_pct: f64,
    /// Intermediate threshold picked by the miner (absolute tuples).
    pub intermediate_abs: u64,
    /// Single-step H-Mine seconds.
    pub single_s: f64,
    /// Two-step total seconds (pre-pass + compression + mining).
    pub two_step_s: f64,
    /// The final (compressed) mining phase alone.
    pub two_step_mine_s: f64,
    /// Patterns found.
    pub patterns: usize,
}

impl ToJson for TwoStepRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("target_pct", self.target_pct.into()),
            ("intermediate_abs", self.intermediate_abs.into()),
            ("single_s", self.single_s.into()),
            ("two_step_s", self.two_step_s.into()),
            ("two_step_mine_s", self.two_step_mine_s.into()),
            ("patterns", self.patterns.into()),
        ])
    }
}

/// The paper's future-work experiment: answer single low-support
/// requests by bootstrapping a high-support pre-pass.
pub fn two_step_experiment(dataset: PresetKind, scale: f64) -> Vec<TwoStepRow> {
    let preset = DatasetPreset::new(dataset, scale);
    let db = preset.generate();
    preset
        .sweep()
        .into_iter()
        .map(|target| {
            let (single, single_t) = TwoStepMiner::single_step(&db, target);
            let (two, report) = TwoStepMiner::new().mine(&db, target);
            assert!(two.same_patterns_as(&single), "two-step mismatch");
            TwoStepRow {
                target_pct: match target {
                    MinSupport::Relative(f) => (f * 100.0 * 1e6).round() / 1e6,
                    MinSupport::Absolute(n) => n as f64,
                },
                intermediate_abs: report.intermediate.to_absolute(db.len()),
                single_s: single_t.as_secs_f64(),
                two_step_s: report.total().as_secs_f64(),
                two_step_mine_s: report.mining_time.as_secs_f64(),
                patterns: single.len(),
            }
        })
        .collect()
}

/// One thread count's outcome in the parallel-mining experiment.
#[derive(Debug, Clone)]
pub struct ParallelRow {
    /// Worker threads.
    pub threads: usize,
    /// Wall seconds.
    pub secs: f64,
    /// Patterns found.
    pub patterns: usize,
}

impl ToJson for ParallelRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("threads", self.threads.into()),
            ("secs", self.secs.into()),
            ("patterns", self.patterns.into()),
        ])
    }
}

/// One kernel/thread-count outcome in the compression-kernel experiment.
#[derive(Debug, Clone)]
pub struct CompressParRow {
    /// Dataset analog name.
    pub dataset: &'static str,
    /// `"linear"` (the original full-FP scan) or `"indexed"` (the
    /// anchor-bucket cover index).
    pub kernel: &'static str,
    /// Worker threads (the linear reference is always serial).
    pub threads: usize,
    /// Compression wall seconds.
    pub secs: f64,
    /// Groups in the compressed database (identical across rows by
    /// construction — asserted).
    pub groups: usize,
    /// Recycled patterns driving the compression.
    pub recycled_patterns: usize,
}

impl ToJson for CompressParRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("dataset", self.dataset.into()),
            ("kernel", self.kernel.into()),
            ("threads", self.threads.into()),
            ("secs", self.secs.into()),
            ("groups", self.groups.into()),
            ("recycled_patterns", self.recycled_patterns.into()),
        ])
    }
}

/// Compression-kernel experiment: the seed's linear scan vs the indexed
/// kernel at 1/2/4/8 threads, MCP, on one dataset analog. Every variant's
/// `CompressedDb` is asserted equal to the linear reference.
pub fn compress_kernel_experiment(dataset: PresetKind, scale: f64) -> Vec<CompressParRow> {
    let name = match dataset {
        PresetKind::Weather => "weather",
        PresetKind::Forest => "forest",
        PresetKind::Connect4 => "connect4",
        PresetKind::Pumsb => "pumsb",
    };
    let preset = DatasetPreset::new(dataset, scale);
    let db = preset.generate();
    let fp_old = mine_hmine(&db, preset.xi_old());
    let compressor = Compressor::new(Strategy::Mcp);

    // Best of three so one-shot jitter on small inputs doesn't decide
    // the reported ratio.
    let best = |f: &mut dyn FnMut() -> f64| (0..3).map(|_| f()).fold(f64::INFINITY, f64::min);
    let mut reference = None;
    let linear_s = best(&mut || {
        let start = Instant::now();
        reference = Some(compressor.compress_reference(&db, &fp_old));
        start.elapsed().as_secs_f64()
    });
    let reference = reference.expect("reference run");
    let mut rows = vec![CompressParRow {
        dataset: name,
        kernel: "linear",
        threads: 1,
        secs: linear_s,
        groups: reference.groups().len(),
        recycled_patterns: fp_old.len(),
    }];
    for threads in [1usize, 2, 4, 8] {
        let c = compressor.with_threads(threads);
        let mut cdb = None;
        let secs = best(&mut || {
            let start = Instant::now();
            cdb = Some(c.compress(&db, &fp_old));
            start.elapsed().as_secs_f64()
        });
        let cdb = cdb.expect("indexed run");
        assert_eq!(cdb, reference, "indexed kernel drifted from linear scan");
        rows.push(CompressParRow {
            dataset: name,
            kernel: "indexed",
            threads,
            secs,
            groups: cdb.groups().len(),
            recycled_patterns: fp_old.len(),
        });
    }
    rows
}

/// Parallel recycled mining (RP-Mine over first-level projections) at
/// the lowest sweep threshold.
pub fn parallel_experiment(dataset: PresetKind, scale: f64) -> Vec<ParallelRow> {
    let preset = DatasetPreset::new(dataset, scale);
    let db = preset.generate();
    let fp_old = mine_hmine(&db, preset.xi_old());
    let cdb = Compressor::new(Strategy::Mcp).compress(&db, &fp_old);
    let xi_new = *preset.sweep().last().expect("non-empty sweep");
    let mut reference: Option<usize> = None;
    [1usize, 2, 4, 8]
        .into_iter()
        .map(|threads| {
            let start = Instant::now();
            let set = RpMine::default().mine_parallel(&cdb, xi_new, threads);
            let secs = start.elapsed().as_secs_f64();
            match reference {
                None => reference = Some(set.len()),
                Some(n) => assert_eq!(n, set.len(), "parallel count drift"),
            }
            ParallelRow { threads, secs, patterns: set.len() }
        })
        .collect()
}

/// One engine/thread-count outcome in the parallel-mining-phase
/// experiment.
#[derive(Debug, Clone)]
pub struct MineParRow {
    /// Dataset analog name.
    pub dataset: &'static str,
    /// Engine label — a baseline ("H-Mine") or its MCP-recycled
    /// counterpart ("HM-MCP").
    pub engine: String,
    /// Worker threads for the first-level fan-out.
    pub threads: usize,
    /// Mining wall seconds (output excluded — `CountSink`).
    pub secs: f64,
    /// Patterns found (asserted identical across thread counts and
    /// between each baseline and its recycled counterpart).
    pub patterns: u64,
}

impl ToJson for MineParRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("dataset", self.dataset.into()),
            ("engine", self.engine.clone().into()),
            ("threads", self.threads.into()),
            ("secs", self.secs.into()),
            ("patterns", self.patterns.into()),
        ])
    }
}

/// Parallel mining phase: every algorithm family, fresh on the raw
/// database and recycled on the MCP-compressed one, with first-level
/// projections fanned out over 1/2/4/8 threads at the lowest sweep
/// threshold. Pattern counts are asserted invariant across thread
/// counts and across the fresh/recycled pair.
pub fn mine_par_experiment(dataset: PresetKind, scale: f64) -> Vec<MineParRow> {
    let name = match dataset {
        PresetKind::Weather => "weather",
        PresetKind::Forest => "forest",
        PresetKind::Connect4 => "connect4",
        PresetKind::Pumsb => "pumsb",
    };
    let preset = DatasetPreset::new(dataset, scale);
    let db = preset.generate();
    let fp_old = mine_hmine(&db, preset.xi_old());
    let cdb = Compressor::new(Strategy::Mcp).compress(&db, &fp_old);
    let xi_new = *preset.sweep().last().expect("non-empty sweep");
    let mut rows = Vec::new();
    for family in AlgoFamily::all() {
        let mut reference: Option<u64> = None;
        for threads in [1usize, 2, 4, 8] {
            let par = Parallelism::threads(threads);
            let fresh = family.run_baseline_par(&db, xi_new, par);
            let rec = family.run_recycled_par(&cdb, xi_new, par);
            assert_eq!(fresh.patterns, rec.patterns, "{family:?}: recycled count drift");
            match reference {
                None => reference = Some(fresh.patterns),
                Some(n) => assert_eq!(n, fresh.patterns, "{family:?}: parallel count drift"),
            }
            rows.push(MineParRow {
                dataset: name,
                engine: family.baseline_name().to_owned(),
                threads,
                secs: fresh.secs,
                patterns: fresh.patterns,
            });
            rows.push(MineParRow {
                dataset: name,
                engine: format!("{}-MCP", family.tag()),
                threads,
                secs: rec.secs,
                patterns: rec.patterns,
            });
        }
    }
    rows
}

/// Horizontal vs vertical head-to-head: all four algorithm families
/// (the paper's three plus the Eclat extension) at the same `ξ_new`,
/// fresh on the raw database and recycled on the MCP-compressed one,
/// serial and with the first-level fan-out at 4 threads. Because the
/// threshold is matched, *every* row of one dataset must report the
/// same pattern count — cross-family, cross-substrate, cross-thread —
/// and the experiment asserts exactly that before returning.
pub fn mine_vertical_experiment(dataset: PresetKind, scale: f64) -> Vec<MineParRow> {
    let name = match dataset {
        PresetKind::Weather => "weather",
        PresetKind::Forest => "forest",
        PresetKind::Connect4 => "connect4",
        PresetKind::Pumsb => "pumsb",
    };
    let preset = DatasetPreset::new(dataset, scale);
    let db = preset.generate();
    let fp_old = mine_hmine(&db, preset.xi_old());
    let cdb = Compressor::new(Strategy::Mcp).compress(&db, &fp_old);
    let xi_new = *preset.sweep().last().expect("non-empty sweep");
    let mut rows = Vec::new();
    let mut reference: Option<u64> = None;
    for family in AlgoFamily::with_vertical() {
        for threads in [1usize, 4] {
            let par = Parallelism::threads(threads);
            let fresh = family.run_baseline_par(&db, xi_new, par);
            let rec = family.run_recycled_par(&cdb, xi_new, par);
            for (engine, run) in
                [(family.baseline_name().to_owned(), fresh), (format!("{}-MCP", family.tag()), rec)]
            {
                match reference {
                    None => reference = Some(run.patterns),
                    Some(n) => {
                        assert_eq!(
                            n, run.patterns,
                            "{engine} t={threads}: count drift at matched ξ"
                        )
                    }
                }
                rows.push(MineParRow {
                    dataset: name,
                    engine,
                    threads,
                    secs: run.secs,
                    patterns: run.patterns,
                });
            }
        }
    }
    rows
}

/// One forced-representation outcome in the vertical repr ablation.
#[derive(Debug, Clone)]
pub struct VtReprRow {
    /// Dataset analog name.
    pub dataset: &'static str,
    /// `--vt-repr` mode (auto/bitmap/tidlist/diffset).
    pub mode: &'static str,
    /// Substrate: fresh on the raw database or MCP-recycled.
    pub substrate: &'static str,
    /// Mining wall seconds (output excluded — `CountSink`).
    pub secs: f64,
    /// Patterns found (asserted identical across every mode and row).
    pub patterns: u64,
    /// `mine.bitmap_words_scanned` for the run.
    pub bitmap_words: u64,
    /// `mine.tidlist_elems` for the run.
    pub tidlist_elems: u64,
    /// `mine.diffset_words` for the run.
    pub diffset_words: u64,
    /// Nodes materialized in a different representation than their
    /// parent (`mine.repr_switches`).
    pub repr_switches: u64,
    /// Column-arena bytes flushed (`alloc.projection_bytes`) — the
    /// memory side of the representation trade.
    pub arena_bytes: u64,
}

impl ToJson for VtReprRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("dataset", self.dataset.into()),
            ("mode", self.mode.into()),
            ("substrate", self.substrate.into()),
            ("secs", self.secs.into()),
            ("patterns", self.patterns.into()),
            ("bitmap_words", self.bitmap_words.into()),
            ("tidlist_elems", self.tidlist_elems.into()),
            ("diffset_words", self.diffset_words.into()),
            ("repr_switches", self.repr_switches.into()),
            ("arena_bytes", self.arena_bytes.into()),
        ])
    }
}

/// Vertical representation ablation: the vt family under each
/// `--vt-repr` mode, fresh and MCP-recycled, serial, reporting the
/// per-mode kernel traffic (`mine.bitmap_words_scanned`,
/// `mine.tidlist_elems`, `mine.diffset_words`), the switch count, and
/// the arena-byte peak. Pattern counts are asserted identical across
/// every mode and row — the representation is an encoding, never a
/// semantic.
pub fn vt_repr_ablation(dataset: PresetKind, scale: f64) -> Vec<VtReprRow> {
    let name = match dataset {
        PresetKind::Weather => "weather",
        PresetKind::Forest => "forest",
        PresetKind::Connect4 => "connect4",
        PresetKind::Pumsb => "pumsb",
    };
    let preset = DatasetPreset::new(dataset, scale);
    let db = preset.generate();
    let fp_old = mine_hmine(&db, preset.xi_old());
    let cdb = Compressor::new(Strategy::Mcp).compress(&db, &fp_old);
    let xi_new = *preset.sweep().last().expect("non-empty sweep");
    let mut rows = Vec::new();
    let mut reference: Option<u64> = None;
    for repr in VtRepr::ALL {
        for substrate in ["raw", "MCP"] {
            metrics::reset();
            metrics::set_enabled(true);
            let mut sink = CountSink::new();
            let start = Instant::now();
            if substrate == "raw" {
                Eclat::with_repr(repr).mine_into(&db, xi_new, &mut sink);
            } else {
                RecycleVt::with_repr(repr).mine_into(&cdb, xi_new, &mut sink);
            }
            let secs = start.elapsed().as_secs_f64();
            metrics::set_enabled(false);
            let get = |name: &str| metrics::get(name).unwrap_or(0);
            let row = VtReprRow {
                dataset: name,
                mode: repr.as_str(),
                substrate,
                secs,
                patterns: sink.count(),
                bitmap_words: get("mine.bitmap_words_scanned"),
                tidlist_elems: get("mine.tidlist_elems"),
                diffset_words: get("mine.diffset_words"),
                repr_switches: get("mine.repr_switches"),
                arena_bytes: get("alloc.projection_bytes"),
            };
            metrics::reset();
            match reference {
                None => reference = Some(row.patterns),
                Some(n) => {
                    assert_eq!(n, row.patterns, "{name} --vt-repr {repr} {substrate}: count drift")
                }
            }
            rows.push(row);
        }
    }
    rows
}
