//! Deterministic perf gates: replay a committed benchmark's workload
//! once and require its thread-invariant counters and histogram totals
//! to match the archived `BENCH_*.json` row **exactly**.
//!
//! Wall-clock gates are noise-bound: a CI runner two generations behind
//! a laptop fails every threshold, and a 5% budget hides a 4% real
//! regression forever. Counters are different — the workspace's
//! `mine.*`/`compress.*`/`alloc.*` counters and histogram totals measure
//! *logical work* and are bit-identical for a given workload at any
//! thread count (see `gogreen_obs::registry`). A PR that grows
//! `mine.tuple_touches` by one has changed the datapath, and this gate
//! says so with an exact diff instead of a shrug.
//!
//! The flow (`repro check-perf`): parse the committed baseline rows,
//! re-run each row's workload once (serially — invariance makes the
//! thread count irrelevant), [`measure`] the counter/histogram deltas,
//! and [`compare`] them against every matching row. Thread-variant
//! names (`cover.*`) are skipped on both sides; everything else must
//! match in both directions — a counter that drifted, vanished, or
//! newly appeared is a failure naming the exact metric and values.

use gogreen_obs::metrics::{self, Kind};
use gogreen_obs::{histogram, MetricsSnapshot};
use gogreen_util::Json;

/// One archived benchmark row's identity and work fingerprint.
#[derive(Debug, Clone, Default)]
pub struct BaselineRow {
    /// Benchmark id (`"H-Mine"`, `"FP-MCP"`, `"indexed"`, …).
    pub id: String,
    /// Input parameter (`"connect4/t4"`, `"weather"`, …).
    pub param: String,
    /// Archived per-run counter deltas, as `(name, value)`.
    pub counters: Vec<(String, u64)>,
    /// Archived per-run histogram totals, as `(name, count, sum)`.
    pub hists: Vec<(String, u64, u64)>,
}

/// The counter and histogram deltas of one measured run, in the same
/// shape as [`BaselineRow`] so [`compare`] treats both sides uniformly.
#[derive(Debug, Clone, Default)]
pub struct Observed {
    /// Counter deltas `(name, value)`, zero deltas dropped.
    pub counters: Vec<(String, u64)>,
    /// Histogram total deltas `(name, count, sum)`, empty ones dropped.
    pub hists: Vec<(String, u64, u64)>,
}

/// Parses a `BENCH_*.json` archive (one JSON array of row objects) into
/// baseline rows. Rows without counters parse to empty fingerprints —
/// [`compare`] then only checks that the observation is empty too.
pub fn parse_baseline(text: &str) -> Result<Vec<BaselineRow>, String> {
    let json = Json::parse(text).map_err(|e| format!("invalid baseline JSON: {e}"))?;
    let Json::Arr(rows) = json else {
        return Err("baseline is not a JSON array".to_owned());
    };
    rows.iter()
        .enumerate()
        .map(|(i, row)| {
            let field = |k: &str| {
                row.get(k)
                    .and_then(Json::as_str)
                    .map(str::to_owned)
                    .ok_or_else(|| format!("row {i}: missing \"{k}\""))
            };
            let mut out =
                BaselineRow { id: field("id")?, param: field("param")?, ..Default::default() };
            if let Some(Json::Obj(pairs)) = row.get("counters") {
                for (name, v) in pairs {
                    let v = v
                        .as_u64()
                        .ok_or_else(|| format!("row {i}: counter {name:?} not an integer"))?;
                    out.counters.push((name.clone(), v));
                }
            }
            if let Some(Json::Obj(pairs)) = row.get("hists") {
                for (name, h) in pairs {
                    let count = h.get("count").and_then(Json::as_u64);
                    let sum = h.get("sum").and_then(Json::as_u64);
                    let (Some(count), Some(sum)) = (count, sum) else {
                        return Err(format!("row {i}: hist {name:?} missing count/sum"));
                    };
                    out.hists.push((name.clone(), count, sum));
                }
            }
            Ok(out)
        })
        .collect()
}

/// Runs `f` once with the metrics registry enabled and returns its exact
/// counter and histogram-total deltas (thread-variant and zero entries
/// included; [`compare`] does the filtering so the caller sees the raw
/// fingerprint).
pub fn measure<T>(f: impl FnOnce() -> T) -> Observed {
    let was_enabled = metrics::enabled();
    metrics::set_enabled(true);
    let before = MetricsSnapshot::capture();
    std::hint::black_box(f());
    let delta = MetricsSnapshot::capture().delta_since(&before);
    metrics::set_enabled(was_enabled);
    Observed {
        counters: delta
            .metrics
            .iter()
            .filter(|(_, m)| m.kind == Kind::Counter && m.value > 0)
            .map(|(&n, m)| (n.to_owned(), m.value))
            .collect(),
        hists: delta
            .hists
            .iter()
            .filter(|(_, h)| h.count > 0)
            .map(|(&n, h)| (n.to_owned(), h.count, h.sum))
            .collect(),
    }
}

/// True when `name` participates in the gate: thread-invariant per the
/// registry (the archived rows span thread counts, so variant machine
/// work like `cover.*` can never gate) and not a histogram the archive
/// predates.
fn gated(name: &str) -> bool {
    metrics::is_thread_invariant(name)
}

/// Compares one observed fingerprint against one baseline row. Returns
/// the drift messages (empty = pass): every gated baseline counter and
/// histogram total must be present and exactly equal in the observation,
/// and every gated observed name must exist in the baseline.
pub fn compare(row: &BaselineRow, observed: &Observed) -> Vec<String> {
    let ctx = format!("{}/{}", row.id, row.param);
    let mut drifts = Vec::new();
    for (name, want) in row.counters.iter().filter(|(n, _)| gated(n)) {
        match observed.counters.iter().find(|(n, _)| n == name) {
            Some((_, got)) if got == want => {}
            Some((_, got)) => {
                drifts.push(format!("{ctx}: counter {name} = {got}, baseline {want}"))
            }
            None => drifts.push(format!("{ctx}: counter {name} missing (baseline {want})")),
        }
    }
    for (name, got) in observed.counters.iter().filter(|(n, _)| gated(n)) {
        if !row.counters.iter().any(|(n, _)| n == name) {
            drifts.push(format!("{ctx}: new counter {name} = {got} not in baseline"));
        }
    }
    for (name, want_count, want_sum) in row.hists.iter().filter(|(n, _, _)| gated(n)) {
        match observed.hists.iter().find(|(n, _, _)| n == name) {
            Some((_, c, s)) if c == want_count && s == want_sum => {}
            Some((_, c, s)) => drifts.push(format!(
                "{ctx}: hist {name} = (count {c}, sum {s}), baseline (count {want_count}, sum {want_sum})"
            )),
            None => drifts.push(format!(
                "{ctx}: hist {name} missing (baseline count {want_count}, sum {want_sum})"
            )),
        }
    }
    for (name, c, s) in observed.hists.iter().filter(|(n, _, _)| gated(n)) {
        if !row.hists.iter().any(|(n, _, _)| n == name) {
            drifts.push(format!("{ctx}: new hist {name} (count {c}, sum {s}) not in baseline"));
        }
    }
    drifts
}

/// Resets counters and histograms between measured workloads so deltas
/// never bleed across rows. (Snapshot deltas already isolate runs; the
/// reset additionally keeps [`measure`]'s captures small.)
pub fn reset_registries() {
    metrics::reset();
    histogram::reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASELINE: &str = r#"[
      {"group":"mining","id":"H-Mine","param":"connect4/t1","min_s":0.01,"median_s":0.01,"mean_s":0.01,"samples":5,
       "counters":{"mine.tuple_touches":100,"cover.words_scanned":7},
       "hists":{"mine.projected_db_size":{"count":4,"sum":40}}},
      {"group":"compression","id":"linear","param":"connect4/fp297","min_s":0.01,"median_s":0.01,"mean_s":0.01,"samples":5}
    ]"#;

    fn observed() -> Observed {
        Observed {
            counters: vec![("mine.tuple_touches".into(), 100), ("cover.words_scanned".into(), 999)],
            hists: vec![("mine.projected_db_size".into(), 4, 40)],
        }
    }

    #[test]
    fn parses_rows_with_and_without_fingerprints() {
        let rows = parse_baseline(BASELINE).expect("parses");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].id, "H-Mine");
        assert_eq!(rows[0].counters.len(), 2);
        assert_eq!(rows[0].hists, vec![("mine.projected_db_size".to_owned(), 4, 40)]);
        assert!(rows[1].counters.is_empty() && rows[1].hists.is_empty());
    }

    #[test]
    fn exact_match_passes_and_variant_counters_never_gate() {
        let rows = parse_baseline(BASELINE).unwrap();
        // cover.words_scanned differs (999 vs 7) but is thread-variant:
        // skipped on both sides.
        assert_eq!(compare(&rows[0], &observed()), Vec::<String>::new());
    }

    #[test]
    fn corrupted_baseline_counter_fails() {
        let corrupted =
            BASELINE.replace(r#""mine.tuple_touches":100"#, r#""mine.tuple_touches":101"#);
        let rows = parse_baseline(&corrupted).unwrap();
        let drifts = compare(&rows[0], &observed());
        assert_eq!(drifts.len(), 1, "{drifts:?}");
        assert!(drifts[0].contains("mine.tuple_touches = 100, baseline 101"), "{drifts:?}");
    }

    #[test]
    fn corrupted_hist_total_fails() {
        let corrupted = BASELINE.replace(r#""sum":40"#, r#""sum":41"#);
        let rows = parse_baseline(&corrupted).unwrap();
        let drifts = compare(&rows[0], &observed());
        assert_eq!(drifts.len(), 1, "{drifts:?}");
        assert!(drifts[0].contains("mine.projected_db_size"), "{drifts:?}");
    }

    #[test]
    fn missing_and_novel_names_fail_in_both_directions() {
        let rows = parse_baseline(BASELINE).unwrap();
        let mut obs = observed();
        obs.counters.retain(|(n, _)| n != "mine.tuple_touches");
        obs.counters.push(("mine.bound_prunes".into(), 3));
        let drifts = compare(&rows[0], &obs);
        assert_eq!(drifts.len(), 2, "{drifts:?}");
        assert!(drifts.iter().any(|d| d.contains("missing")), "{drifts:?}");
        assert!(drifts.iter().any(|d| d.contains("new counter mine.bound_prunes")), "{drifts:?}");
    }

    #[test]
    fn measure_fingerprints_one_run() {
        let obs = measure(|| {
            metrics::add("mine.candidate_tests", 5);
            histogram::observe("mine.projected_db_size", 8);
        });
        assert!(obs.counters.iter().any(|(n, v)| n == "mine.candidate_tests" && *v >= 5));
        assert!(obs
            .hists
            .iter()
            .any(|(n, c, s)| n == "mine.projected_db_size" && *c >= 1 && *s >= 8));
    }
}
