//! Table 3: dataset properties, pattern statistics at `ξ_old`, and
//! compression time/ratio for both strategies.
//!
//! The paper's two time columns are reproduced as:
//!
//! * **run time (I/O)** — read the dataset from a text file, compress,
//!   and write the compressed database back to disk;
//! * **run time (pipeline)** — the in-memory compression alone (the
//!   paper deducts I/O because compression can ride along the mining
//!   scan that happens anyway).

use gogreen_core::{Compressor, Strategy};
use gogreen_data::{PatternSet, TransactionDb};
use gogreen_datagen::{DatasetPreset, PaperRow};
use gogreen_miners::mine_hmine;
use gogreen_util::{Json, ToJson};
use std::io::Write;
use std::time::Instant;

/// One dataset row of Table 3 (ours + the paper's reference values).
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Dataset name.
    pub name: String,
    /// Scaled tuple count actually generated.
    pub tuples: usize,
    /// Measured average tuple length.
    pub avg_len: f64,
    /// Measured distinct items.
    pub items: usize,
    /// `ξ_old` percentage.
    pub xi_old_pct: f64,
    /// Patterns mined at `ξ_old`.
    pub patterns: usize,
    /// Longest pattern at `ξ_old`.
    pub max_len: usize,
    /// MCP compression seconds including file I/O.
    pub t_io_mcp: f64,
    /// MCP compression seconds, in-memory only.
    pub t_pipe_mcp: f64,
    /// MLP compression seconds including file I/O.
    pub t_io_mlp: f64,
    /// MLP compression seconds, in-memory only.
    pub t_pipe_mlp: f64,
    /// MCP compression ratio `S_c / S_o`.
    pub ratio_mcp: f64,
    /// MLP compression ratio `S_c / S_o`.
    pub ratio_mlp: f64,
    /// The paper's reference row (original-scale values).
    pub paper_patterns: usize,
    /// The paper's maximal pattern length.
    pub paper_max_len: usize,
}

impl ToJson for Table3Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", self.name.clone().into()),
            ("tuples", self.tuples.into()),
            ("avg_len", self.avg_len.into()),
            ("items", self.items.into()),
            ("xi_old_pct", self.xi_old_pct.into()),
            ("patterns", self.patterns.into()),
            ("max_len", self.max_len.into()),
            ("t_io_mcp", self.t_io_mcp.into()),
            ("t_pipe_mcp", self.t_pipe_mcp.into()),
            ("t_io_mlp", self.t_io_mlp.into()),
            ("t_pipe_mlp", self.t_pipe_mlp.into()),
            ("ratio_mcp", self.ratio_mcp.into()),
            ("ratio_mlp", self.ratio_mlp.into()),
            ("paper_patterns", self.paper_patterns.into()),
            ("paper_max_len", self.paper_max_len.into()),
        ])
    }
}

/// Runs the Table 3 experiment for all four datasets at `scale`.
pub fn run_table3(scale: f64) -> Vec<Table3Row> {
    DatasetPreset::all(scale).into_iter().map(run_row).collect()
}

fn run_row(preset: DatasetPreset) -> Table3Row {
    let db = preset.generate();
    let stats = db.stats();
    let fp_old = mine_hmine(&db, preset.xi_old());
    let paper: PaperRow = preset.paper_row();

    let (t_io_mcp, t_pipe_mcp, ratio_mcp) = compress_timings(&db, &fp_old, Strategy::Mcp);
    let (t_io_mlp, t_pipe_mlp, ratio_mlp) = compress_timings(&db, &fp_old, Strategy::Mlp);

    Table3Row {
        name: preset.name().to_owned(),
        tuples: stats.num_tuples,
        avg_len: stats.avg_len,
        items: stats.num_items,
        xi_old_pct: paper.xi_old_pct,
        patterns: fp_old.len(),
        max_len: fp_old.max_len(),
        t_io_mcp,
        t_pipe_mcp,
        t_io_mlp,
        t_pipe_mlp,
        ratio_mcp,
        ratio_mlp,
        paper_patterns: paper.num_patterns,
        paper_max_len: paper.max_len,
    }
}

/// Returns `(io_seconds, pipeline_seconds, ratio)`.
fn compress_timings(db: &TransactionDb, fp: &PatternSet, strategy: Strategy) -> (f64, f64, f64) {
    // Pipeline: pure in-memory compression.
    let (cdb, stats) = Compressor::new(strategy).compress_with_stats(db, fp);
    let pipeline = stats.duration.as_secs_f64();

    // I/O variant: read dataset from a text file, compress, write the
    // compressed database out.
    let dir = std::env::temp_dir().join(format!(
        "gogreen-table3-{}-{}",
        std::process::id(),
        strategy.suffix()
    ));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let in_path = dir.join("db.txt");
    gogreen_data::io::write_file(db, &in_path).expect("write dataset");
    let out_path = dir.join("cdb.txt");

    let start = Instant::now();
    let loaded = gogreen_data::io::read_file(&in_path).expect("read dataset");
    let (cdb_io, _) = Compressor::new(strategy).compress_with_stats(&loaded, fp);
    write_cdb(&cdb_io, &out_path);
    let io = start.elapsed().as_secs_f64();

    std::fs::remove_dir_all(&dir).ok();
    drop(cdb);
    (io, pipeline, stats.ratio)
}

/// Writes a compressed database in a simple text format (one group or
/// plain tuple per line) — the "write the compressed dataset" half of
/// the I/O timing.
fn write_cdb(cdb: &gogreen_core::CompressedDb, path: &std::path::Path) {
    let mut w = std::io::BufWriter::new(std::fs::File::create(path).expect("create cdb file"));
    let mut line = String::new();
    for g in cdb.groups() {
        line.clear();
        line.push_str("G ");
        for it in g.pattern() {
            line.push_str(&it.id().to_string());
            line.push(' ');
        }
        line.push_str(&format!("| bare={} members={}", g.bare(), g.outliers().len()));
        line.push('\n');
        w.write_all(line.as_bytes()).expect("write group");
        for o in g.outliers() {
            line.clear();
            line.push_str("  O ");
            for it in o.iter() {
                line.push_str(&it.id().to_string());
                line.push(' ');
            }
            line.push('\n');
            w.write_all(line.as_bytes()).expect("write outliers");
        }
    }
    for t in cdb.plain() {
        line.clear();
        line.push_str("P ");
        for it in t {
            line.push_str(&it.id().to_string());
            line.push(' ');
        }
        line.push('\n');
        w.write_all(line.as_bytes()).expect("write plain");
    }
    w.flush().expect("flush cdb");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_table3_has_four_rows_with_sane_values() {
        let rows = run_table3(0.001);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.tuples >= 2000, "{}", r.name);
            assert!(r.patterns > 0, "{} mined no patterns at ξ_old", r.name);
            assert!(r.ratio_mcp > 0.0 && r.ratio_mcp <= 1.0);
            assert!(r.ratio_mlp > 0.0 && r.ratio_mlp <= 1.0);
            assert!(
                r.t_io_mcp >= r.t_pipe_mcp * 0.5,
                "I/O time should not undercut pipeline wildly"
            );
        }
        // Dense rows carry long patterns.
        let connect4 = rows.iter().find(|r| r.name == "connect4").unwrap();
        assert!(connect4.max_len >= 4, "connect4 max_len = {}", connect4.max_len);
    }
}
