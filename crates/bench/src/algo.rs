//! Algorithm registry: the three baseline/recycling pairs the paper
//! evaluates, with uniform timed entry points.
//!
//! Timings use a [`CountSink`], excluding pattern-output cost as the
//! paper does (§5.2), and return the pattern count as a cross-algorithm
//! checksum: every pair member must report the same count for the same
//! input.

use gogreen_core::engine::{engine_named, MiningEngine};
use gogreen_core::CompressedDb;
use gogreen_data::{CountSink, MinSupport, TransactionDb};
use gogreen_util::pool::Parallelism;
use gogreen_util::{Json, ToJson};
use std::time::Instant;

/// One baseline/recycling algorithm pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgoFamily {
    /// H-Mine / HM-MCP / HM-MLP.
    HMine,
    /// FP-tree / FP-MCP / FP-MLP.
    FpTree,
    /// Tree Projection / TP-MCP / TP-MLP.
    TreeProjection,
    /// Vertical bitmap Eclat / VT-MCP / VT-MLP (not in the paper's
    /// evaluation — the extension family, see `EXPERIMENTS.md` E8).
    Eclat,
}

/// Wall time and emitted-pattern count of one run.
#[derive(Debug, Clone, Copy)]
pub struct TimedRun {
    /// Seconds of mining wall time.
    pub secs: f64,
    /// Patterns emitted.
    pub patterns: u64,
}

impl ToJson for AlgoFamily {
    fn to_json(&self) -> Json {
        Json::Str(format!("{self:?}"))
    }
}

impl ToJson for TimedRun {
    fn to_json(&self) -> Json {
        Json::obj([("secs", self.secs.into()), ("patterns", self.patterns.into())])
    }
}

impl AlgoFamily {
    /// Name of the non-recycling baseline.
    pub fn baseline_name(self) -> &'static str {
        match self {
            AlgoFamily::HMine => "H-Mine",
            AlgoFamily::FpTree => "FP-tree",
            AlgoFamily::TreeProjection => "TreeProjection",
            AlgoFamily::Eclat => "Eclat",
        }
    }

    /// Short tag used in recycled-variant names ("HM-MCP" etc.).
    pub fn tag(self) -> &'static str {
        match self {
            AlgoFamily::HMine => "HM",
            AlgoFamily::FpTree => "FP",
            AlgoFamily::TreeProjection => "TP",
            AlgoFamily::Eclat => "VT",
        }
    }

    /// Times the baseline miner.
    pub fn run_baseline(self, db: &TransactionDb, ms: MinSupport) -> TimedRun {
        self.run_baseline_par(db, ms, Parallelism::serial())
    }

    /// The engine-registry key ("hmine" | "fp" | "tp" | "vt") — what
    /// front ends that dispatch by name (the CLI, [`QueryBatch`]) take.
    ///
    /// [`QueryBatch`]: gogreen_core::batch::QueryBatch
    pub fn key(self) -> &'static str {
        match self {
            AlgoFamily::HMine => "hmine",
            AlgoFamily::FpTree => "fp",
            AlgoFamily::TreeProjection => "tp",
            AlgoFamily::Eclat => "vt",
        }
    }

    /// The engine-registry entry backing this family.
    fn engine(self) -> &'static dyn MiningEngine {
        engine_named(self.key()).expect("bench families are registered")
    }

    /// Times the baseline miner with its first-level projections fanned
    /// out over `par`.
    pub fn run_baseline_par(
        self,
        db: &TransactionDb,
        ms: MinSupport,
        par: Parallelism,
    ) -> TimedRun {
        let miner = self.engine().raw();
        let mut sink = CountSink::new();
        let start = Instant::now();
        miner.mine_into_par(db, ms, par, &mut sink);
        TimedRun { secs: start.elapsed().as_secs_f64(), patterns: sink.count() }
    }

    /// Times the recycling counterpart on a compressed database.
    pub fn run_recycled(self, cdb: &CompressedDb, ms: MinSupport) -> TimedRun {
        self.run_recycled_par(cdb, ms, Parallelism::serial())
    }

    /// Times the recycling counterpart with its first-level projections
    /// fanned out over `par`.
    pub fn run_recycled_par(
        self,
        cdb: &CompressedDb,
        ms: MinSupport,
        par: Parallelism,
    ) -> TimedRun {
        let miner = self.engine().recycling(par).expect("bench families have recycling pairs");
        let mut sink = CountSink::new();
        let start = Instant::now();
        miner.mine_into_par(cdb, ms, par, &mut sink);
        TimedRun { secs: start.elapsed().as_secs_f64(), patterns: sink.count() }
    }

    /// The three families of the paper's evaluation, in its presentation
    /// order. Paper-reproduction experiments iterate this set.
    pub fn all() -> [AlgoFamily; 3] {
        [AlgoFamily::HMine, AlgoFamily::FpTree, AlgoFamily::TreeProjection]
    }

    /// The paper families plus the vertical Eclat extension — for the
    /// extension experiments and benches that compare all four.
    pub fn with_vertical() -> [AlgoFamily; 4] {
        [AlgoFamily::HMine, AlgoFamily::FpTree, AlgoFamily::TreeProjection, AlgoFamily::Eclat]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gogreen_core::{Compressor, Strategy};
    use gogreen_miners::mine_apriori;

    #[test]
    fn pairs_agree_on_pattern_counts() {
        let db = TransactionDb::paper_example();
        let fp_old = mine_apriori(&db, MinSupport::Absolute(3));
        let cdb = Compressor::new(Strategy::Mcp).compress(&db, &fp_old);
        for family in AlgoFamily::with_vertical() {
            let base = family.run_baseline(&db, MinSupport::Absolute(2));
            let rec = family.run_recycled(&cdb, MinSupport::Absolute(2));
            assert_eq!(base.patterns, rec.patterns, "{family:?}");
            assert!(base.secs >= 0.0 && rec.secs >= 0.0);
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: Vec<_> = AlgoFamily::with_vertical().iter().map(|f| f.baseline_name()).collect();
        assert_eq!(names.len(), 4);
        assert!(names.iter().collect::<std::collections::BTreeSet<_>>().len() == 4);
    }
}
