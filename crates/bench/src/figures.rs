//! Figures 9–24: runtime sweeps over `ξ_new`.
//!
//! * Figures 9–20 (in-memory): for each dataset × algorithm family, plot
//!   the baseline against its MCP- and MLP-recycling variants while
//!   relaxing `ξ_new` below `ξ_old`.
//! * Figures 21–24 (memory-limited): H-Mine vs HM-MCP under 4 MiB and
//!   8 MiB budgets (budgets scale with the dataset so the
//!   structure-to-budget ratio matches the paper's setting).

use crate::algo::AlgoFamily;
use gogreen_core::{CompressionStats, Compressor, Strategy};
use gogreen_data::{CountSink, MinSupport, PatternSet, TransactionDb};
use gogreen_datagen::{DatasetPreset, PresetKind};
use gogreen_miners::mine_hmine;
use gogreen_storage::{LimitedHMine, LimitedRecycleHm, MemoryBudget};
use gogreen_util::{Json, ToJson};
use std::time::Instant;

/// Static description of one in-memory figure (9–20).
#[derive(Debug, Clone, Copy)]
pub struct FigureSpec {
    /// Paper figure number.
    pub id: u8,
    /// Dataset analog.
    pub dataset: PresetKind,
    /// Algorithm family plotted.
    pub family: AlgoFamily,
    /// Whether the paper plots this figure with a logarithmic y axis.
    pub log_y: bool,
}

/// One sweep point of an in-memory figure.
#[derive(Debug, Clone, Copy)]
pub struct FigureRow {
    /// `ξ_new` as a percentage.
    pub xi_new_pct: f64,
    /// Baseline seconds.
    pub baseline_s: f64,
    /// MCP-recycled seconds.
    pub mcp_s: f64,
    /// MLP-recycled seconds.
    pub mlp_s: f64,
    /// Patterns found (identical across the three runs).
    pub patterns: u64,
}

/// A complete in-memory figure.
#[derive(Debug, Clone)]
pub struct FigureResult {
    /// The figure description.
    pub spec: FigureSpec,
    /// Dataset scale used.
    pub scale: f64,
    /// `ξ_old` as a percentage.
    pub xi_old_pct: f64,
    /// Seconds spent mining the recycled pattern set at `ξ_old`
    /// (observation 1 in §5.2 compares savings against this).
    pub prep_mine_s: f64,
    /// Patterns recycled.
    pub recycled_patterns: usize,
    /// MCP compression metrics.
    pub mcp_compression: CompressionSummary,
    /// MLP compression metrics.
    pub mlp_compression: CompressionSummary,
    /// The sweep.
    pub rows: Vec<FigureRow>,
}

/// Serializable subset of [`CompressionStats`].
#[derive(Debug, Clone, Copy)]
pub struct CompressionSummary {
    /// Compression seconds (pipeline, in memory).
    pub secs: f64,
    /// `S_c / S_o`.
    pub ratio: f64,
    /// Groups formed.
    pub groups: usize,
    /// Tuples covered.
    pub covered: usize,
}

impl From<CompressionStats> for CompressionSummary {
    fn from(s: CompressionStats) -> Self {
        CompressionSummary {
            secs: s.duration.as_secs_f64(),
            ratio: s.ratio,
            groups: s.num_groups,
            covered: s.covered_tuples,
        }
    }
}

impl ToJson for FigureSpec {
    fn to_json(&self) -> Json {
        Json::obj([
            ("id", self.id.into()),
            ("dataset", Json::Str(format!("{:?}", self.dataset))),
            ("family", self.family.to_json()),
            ("log_y", self.log_y.into()),
        ])
    }
}

impl ToJson for FigureRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("xi_new_pct", self.xi_new_pct.into()),
            ("baseline_s", self.baseline_s.into()),
            ("mcp_s", self.mcp_s.into()),
            ("mlp_s", self.mlp_s.into()),
            ("patterns", self.patterns.into()),
        ])
    }
}

impl ToJson for CompressionSummary {
    fn to_json(&self) -> Json {
        Json::obj([
            ("secs", self.secs.into()),
            ("ratio", self.ratio.into()),
            ("groups", self.groups.into()),
            ("covered", self.covered.into()),
        ])
    }
}

impl ToJson for FigureResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("spec", self.spec.to_json()),
            ("scale", self.scale.into()),
            ("xi_old_pct", self.xi_old_pct.into()),
            ("prep_mine_s", self.prep_mine_s.into()),
            ("recycled_patterns", self.recycled_patterns.into()),
            ("mcp_compression", self.mcp_compression.to_json()),
            ("mlp_compression", self.mlp_compression.to_json()),
            ("rows", Json::Arr(self.rows.iter().map(ToJson::to_json).collect())),
        ])
    }
}

impl ToJson for MemFigureRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("xi_new_pct", self.xi_new_pct.into()),
            ("budget_mib", self.budget_mib.into()),
            ("hmine_s", self.hmine_s.into()),
            ("hm_mcp_s", self.hm_mcp_s.into()),
            ("hmine_spills", self.hmine_spills.into()),
            ("hm_mcp_spills", self.hm_mcp_spills.into()),
            ("patterns", self.patterns.into()),
        ])
    }
}

impl ToJson for MemFigureResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("id", self.id.into()),
            ("dataset", Json::Str(format!("{:?}", self.dataset))),
            ("scale", self.scale.into()),
            ("rows", Json::Arr(self.rows.iter().map(ToJson::to_json).collect())),
        ])
    }
}

/// The paper's figure layout: figures 9–20 = (dataset block) × (HM, FP,
/// TP). Log-scale y axes on the dense datasets' HM and TP figures,
/// matching the paper's captions.
pub fn figure_spec(id: u8) -> Option<FigureSpec> {
    let (dataset, family, log_y) = match id {
        9 => (PresetKind::Weather, AlgoFamily::HMine, false),
        10 => (PresetKind::Weather, AlgoFamily::FpTree, false),
        11 => (PresetKind::Weather, AlgoFamily::TreeProjection, false),
        12 => (PresetKind::Forest, AlgoFamily::HMine, false),
        13 => (PresetKind::Forest, AlgoFamily::FpTree, false),
        14 => (PresetKind::Forest, AlgoFamily::TreeProjection, false),
        15 => (PresetKind::Connect4, AlgoFamily::HMine, true),
        16 => (PresetKind::Connect4, AlgoFamily::FpTree, false),
        17 => (PresetKind::Connect4, AlgoFamily::TreeProjection, true),
        18 => (PresetKind::Pumsb, AlgoFamily::HMine, true),
        19 => (PresetKind::Pumsb, AlgoFamily::FpTree, false),
        20 => (PresetKind::Pumsb, AlgoFamily::TreeProjection, true),
        _ => return None,
    };
    Some(FigureSpec { id, dataset, family, log_y })
}

/// Mines the recycled pattern set at `ξ_old` (timed) — shared setup of
/// every figure.
pub fn prepare_recycled(db: &TransactionDb, xi_old: MinSupport) -> (PatternSet, f64) {
    let start = Instant::now();
    let fp = mine_hmine(db, xi_old);
    (fp, start.elapsed().as_secs_f64())
}

/// Runs one in-memory figure (9–20).
///
/// # Panics
///
/// Panics if `id` is not in `9..=20`, or if the three algorithm variants
/// disagree on the pattern count (which would mean a correctness bug).
pub fn run_figure(id: u8, scale: f64) -> FigureResult {
    let spec = figure_spec(id).expect("figure id in 9..=20");
    let preset = DatasetPreset::new(spec.dataset, scale);
    let db = preset.generate();
    let (fp_old, prep_mine_s) = prepare_recycled(&db, preset.xi_old());
    let (cdb_mcp, stats_mcp) = Compressor::new(Strategy::Mcp).compress_with_stats(&db, &fp_old);
    let (cdb_mlp, stats_mlp) = Compressor::new(Strategy::Mlp).compress_with_stats(&db, &fp_old);
    let mut rows = Vec::new();
    for ms in preset.sweep() {
        let base = spec.family.run_baseline(&db, ms);
        let mcp = spec.family.run_recycled(&cdb_mcp, ms);
        let mlp = spec.family.run_recycled(&cdb_mlp, ms);
        assert_eq!(base.patterns, mcp.patterns, "fig {id}: MCP count mismatch");
        assert_eq!(base.patterns, mlp.patterns, "fig {id}: MLP count mismatch");
        rows.push(FigureRow {
            xi_new_pct: pct(ms),
            baseline_s: base.secs,
            mcp_s: mcp.secs,
            mlp_s: mlp.secs,
            patterns: base.patterns,
        });
    }
    FigureResult {
        spec,
        scale,
        xi_old_pct: pct(preset.xi_old()),
        prep_mine_s,
        recycled_patterns: fp_old.len(),
        mcp_compression: stats_mcp.into(),
        mlp_compression: stats_mlp.into(),
        rows,
    }
}

/// One sweep point of a memory-limited figure (21–24).
#[derive(Debug, Clone, Copy)]
pub struct MemFigureRow {
    /// `ξ_new` as a percentage.
    pub xi_new_pct: f64,
    /// Budget in (scaled) MiB — 4 or 8.
    pub budget_mib: f64,
    /// H-Mine seconds under the budget.
    pub hmine_s: f64,
    /// HM-MCP seconds under the budget.
    pub hm_mcp_s: f64,
    /// Disk spills performed by H-Mine.
    pub hmine_spills: usize,
    /// Disk spills performed by HM-MCP.
    pub hm_mcp_spills: usize,
    /// Patterns found.
    pub patterns: u64,
}

/// A complete memory-limited figure.
#[derive(Debug, Clone)]
pub struct MemFigureResult {
    /// Paper figure number (21–24).
    pub id: u8,
    /// Dataset analog.
    pub dataset: PresetKind,
    /// Dataset scale.
    pub scale: f64,
    /// The sweep (two rows per `ξ_new`: one per budget).
    pub rows: Vec<MemFigureRow>,
}

/// Runs one memory-limited figure (21–24): H-Mine vs HM-MCP under the
/// paper's 4 MiB and 8 MiB budgets, scaled by the dataset scale so the
/// pressure matches the paper's setting.
///
/// # Panics
///
/// Panics if `id` is not in `21..=24` or on an algorithm disagreement.
pub fn run_mem_figure(id: u8, scale: f64) -> MemFigureResult {
    let dataset = match id {
        21 => PresetKind::Weather,
        22 => PresetKind::Forest,
        23 => PresetKind::Connect4,
        24 => PresetKind::Pumsb,
        _ => panic!("memory figure id in 21..=24"),
    };
    let preset = DatasetPreset::new(dataset, scale);
    let db = preset.generate();
    let (fp_old, _) = prepare_recycled(&db, preset.xi_old());
    let cdb = Compressor::new(Strategy::Mcp).compress(&db, &fp_old);
    let mut rows = Vec::new();
    for mib in [4.0f64, 8.0] {
        let budget = MemoryBudget::bytes(((mib * scale) * 1024.0 * 1024.0).max(1024.0) as usize);
        for ms in preset.sweep() {
            let mut sink = CountSink::new();
            let start = Instant::now();
            let rep_h = LimitedHMine::new(budget).mine_into(&db, ms, &mut sink).expect("spill i/o");
            let hmine_s = start.elapsed().as_secs_f64();
            let base_patterns = sink.count();

            let mut sink = CountSink::new();
            let start = Instant::now();
            let rep_m =
                LimitedRecycleHm::new(budget).mine_into(&cdb, ms, &mut sink).expect("spill i/o");
            let hm_mcp_s = start.elapsed().as_secs_f64();
            assert_eq!(base_patterns, sink.count(), "fig {id}: count mismatch");

            rows.push(MemFigureRow {
                xi_new_pct: pct(ms),
                budget_mib: mib,
                hmine_s,
                hm_mcp_s,
                hmine_spills: rep_h.spills,
                hm_mcp_spills: rep_m.spills,
                patterns: base_patterns,
            });
        }
    }
    MemFigureResult { id, dataset, scale, rows }
}

fn pct(ms: MinSupport) -> f64 {
    match ms {
        // Round away binary-float noise (0.9 * 100 = 90.000…01).
        MinSupport::Relative(f) => (f * 100.0 * 1e6).round() / 1e6,
        MinSupport::Absolute(n) => n as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_twelve_figures_have_specs() {
        for id in 9..=20 {
            let s = figure_spec(id).unwrap();
            assert_eq!(s.id, id);
        }
        assert!(figure_spec(8).is_none());
        assert!(figure_spec(21).is_none());
    }

    #[test]
    fn figure_layout_matches_paper() {
        assert_eq!(figure_spec(9).unwrap().dataset, PresetKind::Weather);
        assert_eq!(figure_spec(15).unwrap().dataset, PresetKind::Connect4);
        assert!(figure_spec(15).unwrap().log_y);
        assert_eq!(figure_spec(20).unwrap().family, AlgoFamily::TreeProjection);
    }

    /// A miniature end-to-end figure run (tiny scale, real pipeline).
    #[test]
    fn tiny_figure_run_is_consistent() {
        let res = run_figure(15, 0.001);
        assert_eq!(res.rows.len(), 5);
        assert!(res.recycled_patterns > 0);
        for row in &res.rows {
            assert!(row.patterns > 0);
        }
        // ξ_new decreases monotonically along the sweep.
        assert!(res.rows.windows(2).all(|w| w[0].xi_new_pct > w[1].xi_new_pct));
    }

    #[test]
    fn tiny_mem_figure_run_is_consistent() {
        let res = run_mem_figure(23, 0.001);
        assert_eq!(res.rows.len(), 10); // 2 budgets × 5 points
        assert!(res.rows.iter().all(|r| r.patterns > 0));
    }
}
