//! Result presentation: aligned console tables plus JSON-lines archives
//! under `results/`.

use gogreen_util::json::ToJson;
use std::io::Write;
use std::path::PathBuf;

/// Writes experiment outputs: pretty tables to stdout, JSON lines to
/// `results/<name>.jsonl` (one line per invocation, so re-runs append a
/// history).
pub struct Reporter {
    results_dir: PathBuf,
}

impl Reporter {
    /// A reporter writing under `dir` (created on demand).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Reporter { results_dir: dir.into() }
    }

    /// Default reporter: `./results`.
    pub fn default_dir() -> Self {
        Self::new("results")
    }

    /// Appends `record` as one JSON line to `<name>.jsonl`.
    pub fn save_json(&self, name: &str, record: &impl ToJson) -> std::io::Result<()> {
        std::fs::create_dir_all(&self.results_dir)?;
        let path = self.results_dir.join(format!("{name}.jsonl"));
        let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        f.write_all(record.to_json().dump().as_bytes())?;
        f.write_all(b"\n")?;
        Ok(())
    }
}

/// Renders an aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (k, cell) in row.iter().enumerate() {
            if k < widths.len() {
                widths[k] = widths[k].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (k, cell) in cells.iter().enumerate() {
            if k > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:>width$}", width = widths[k]));
        }
        line.push('\n');
        line
    };
    let headers_owned: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&headers_owned, &widths));
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Formats seconds with adaptive precision.
pub fn fmt_secs(s: f64) -> String {
    if s >= 10.0 {
        format!("{s:.1}s")
    } else if s >= 0.1 {
        format!("{s:.2}s")
    } else {
        format!("{:.1}ms", s * 1000.0)
    }
}

/// Formats a speedup factor.
pub fn fmt_speedup(baseline: f64, variant: f64) -> String {
    if variant <= 0.0 {
        "-".to_owned()
    } else {
        format!("{:.1}x", baseline / variant)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = render_table(
            &["name", "value"],
            &[vec!["a".into(), "1".into()], vec!["long-name".into(), "12345".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name") && lines[0].contains("value"));
        assert!(lines[3].contains("long-name"));
        // All data lines equal width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn secs_formatting() {
        assert_eq!(fmt_secs(12.34), "12.3s");
        assert_eq!(fmt_secs(0.5), "0.50s");
        assert_eq!(fmt_secs(0.0123), "12.3ms");
    }

    #[test]
    fn speedup_formatting() {
        assert_eq!(fmt_speedup(10.0, 1.0), "10.0x");
        assert_eq!(fmt_speedup(1.0, 0.0), "-");
    }

    #[test]
    fn reporter_appends_json_lines() {
        let dir = std::env::temp_dir().join(format!("gogreen-report-{}", std::process::id()));
        let r = Reporter::new(&dir);
        struct Rec {
            x: u32,
        }
        impl ToJson for Rec {
            fn to_json(&self) -> gogreen_util::Json {
                gogreen_util::Json::obj([("x", self.x.into())])
            }
        }
        r.save_json("t", &Rec { x: 1 }).unwrap();
        r.save_json("t", &Rec { x: 2 }).unwrap();
        let text = std::fs::read_to_string(dir.join("t.jsonl")).unwrap();
        assert_eq!(text.lines().count(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
