//! A minimal microbenchmark harness (stand-in for criterion, which is
//! not available in hermetic builds).
//!
//! Each measurement runs the closure once to warm caches, then `samples`
//! timed iterations, reporting min/median/mean. Results print as a table
//! and are returned so callers can archive them as JSON.

use gogreen_util::{Json, ToJson};
use std::time::Instant;

/// One benchmark's measured timings.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Group name (e.g. "compression").
    pub group: String,
    /// Benchmark id within the group (e.g. "MCP").
    pub id: String,
    /// Input parameter (e.g. dataset name).
    pub param: String,
    /// Fastest sample, seconds.
    pub min_s: f64,
    /// Median sample, seconds.
    pub median_s: f64,
    /// Mean of samples, seconds.
    pub mean_s: f64,
    /// Number of timed samples.
    pub samples: usize,
}

impl ToJson for BenchResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("group", self.group.clone().into()),
            ("id", self.id.clone().into()),
            ("param", self.param.clone().into()),
            ("min_s", self.min_s.into()),
            ("median_s", self.median_s.into()),
            ("mean_s", self.mean_s.into()),
            ("samples", self.samples.into()),
        ])
    }
}

/// A group of benchmarks sharing a sample count.
pub struct BenchGroup {
    name: String,
    samples: usize,
    results: Vec<BenchResult>,
}

impl BenchGroup {
    /// Creates a group with a default of 10 samples per benchmark.
    pub fn new(name: &str) -> Self {
        BenchGroup { name: name.to_owned(), samples: 10, results: Vec::new() }
    }

    /// Sets the timed-sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Times `f` (one warmup + `samples` timed runs) and records the
    /// result under `id`/`param`. The closure's return value is consumed
    /// via `std::hint::black_box` so the work is not optimized away.
    pub fn bench<T>(&mut self, id: &str, param: &str, mut f: impl FnMut() -> T) -> &BenchResult {
        std::hint::black_box(f());
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(f());
            times.push(start.elapsed().as_secs_f64());
        }
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let result = BenchResult {
            group: self.name.clone(),
            id: id.to_owned(),
            param: param.to_owned(),
            min_s: times[0],
            median_s: times[times.len() / 2],
            mean_s: times.iter().sum::<f64>() / times.len() as f64,
            samples: times.len(),
        };
        println!(
            "{}/{}/{}: min {} median {} ({} samples)",
            result.group,
            result.id,
            result.param,
            crate::report::fmt_secs(result.min_s),
            crate::report::fmt_secs(result.median_s),
            result.samples,
        );
        self.results.push(result);
        self.results.last().expect("just pushed")
    }

    /// All results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Consumes the group, returning its results.
    pub fn finish(self) -> Vec<BenchResult> {
        self.results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_orders_stats() {
        let mut g = BenchGroup::new("t");
        g.sample_size(5);
        let r = g.bench("sum", "small", || (0..1000u64).sum::<u64>()).clone();
        assert_eq!(r.samples, 5);
        assert!(r.min_s <= r.median_s);
        assert!(r.min_s > 0.0 || r.mean_s >= 0.0);
        assert_eq!(g.finish().len(), 1);
    }

    #[test]
    fn json_round_shape() {
        let r = BenchResult {
            group: "g".into(),
            id: "i".into(),
            param: "p".into(),
            min_s: 0.1,
            median_s: 0.2,
            mean_s: 0.2,
            samples: 3,
        };
        let s = r.to_json().dump();
        assert!(s.contains("\"group\":\"g\"") && s.contains("\"samples\":3"));
    }
}
