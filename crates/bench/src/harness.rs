//! A minimal microbenchmark harness (stand-in for criterion, which is
//! not available in hermetic builds).
//!
//! Each measurement runs the closure once to warm caches, then `samples`
//! timed iterations, reporting min/median/mean. Results print as a table
//! and are returned so callers can archive them as JSON. When the
//! `gogreen_obs` metrics registry is enabled, each result also carries
//! the per-run counter deltas, so archived rows explain *what work* the
//! timed code did, not just how long it took.

use gogreen_obs::{histogram, metrics};
use gogreen_util::{Json, Stopwatch, ToJson};

/// One benchmark's measured timings.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Group name (e.g. "compression").
    pub group: String,
    /// Benchmark id within the group (e.g. "MCP").
    pub id: String,
    /// Input parameter (e.g. dataset name).
    pub param: String,
    /// Fastest sample, seconds.
    pub min_s: f64,
    /// Median sample, seconds.
    pub median_s: f64,
    /// Mean of samples, seconds.
    pub mean_s: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Per-run counter deltas (counters only, averaged over warmup +
    /// samples). Empty unless `gogreen_obs::metrics` is enabled.
    pub counters: Vec<(&'static str, u64)>,
    /// Per-run histogram totals as `(name, count, sum)` deltas, averaged
    /// the same way. Bucket vectors stay out of the archive: count+sum
    /// already pin the distribution for the perf gate, and the full
    /// vectors are available live via `--metrics-out`.
    pub hists: Vec<(&'static str, u64, u64)>,
}

impl ToJson for BenchResult {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("group", self.group.clone().into()),
            ("id", self.id.clone().into()),
            ("param", self.param.clone().into()),
            ("min_s", self.min_s.into()),
            ("median_s", self.median_s.into()),
            ("mean_s", self.mean_s.into()),
            ("samples", self.samples.into()),
        ];
        if !self.counters.is_empty() {
            let counters = self.counters.iter().map(|&(n, v)| (n, Json::from(v)));
            fields.push(("counters", Json::obj(counters)));
        }
        if !self.hists.is_empty() {
            let hists = self.hists.iter().map(|&(n, count, sum)| {
                (n, Json::obj([("count", Json::from(count)), ("sum", Json::from(sum))]))
            });
            fields.push(("hists", Json::obj(hists)));
        }
        Json::obj(fields)
    }
}

/// A group of benchmarks sharing a sample count.
pub struct BenchGroup {
    name: String,
    samples: usize,
    results: Vec<BenchResult>,
}

impl BenchGroup {
    /// Creates a group with a default of 10 samples per benchmark.
    pub fn new(name: &str) -> Self {
        BenchGroup { name: name.to_owned(), samples: 10, results: Vec::new() }
    }

    /// Sets the timed-sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Times `f` (one warmup + `samples` timed runs) and records the
    /// result under `id`/`param`. The closure's return value is consumed
    /// via `std::hint::black_box` so the work is not optimized away.
    pub fn bench<T>(&mut self, id: &str, param: &str, mut f: impl FnMut() -> T) -> &BenchResult {
        let before: Vec<(&'static str, u64)> = counter_values();
        let hists_before = hist_totals();
        std::hint::black_box(f());
        let mut times = Vec::with_capacity(self.samples);
        // One stopwatch for the whole loop; each `lap()` reads the split
        // since the previous one, so bookkeeping between samples (the
        // push) is the only non-measured work charged to the next sample.
        let mut watch = Stopwatch::started();
        for _ in 0..self.samples {
            std::hint::black_box(f());
            times.push(watch.lap().as_secs_f64());
        }
        // Deterministic workloads add the same counts every run, so the
        // total delta divided by the run count is the exact per-run cost.
        let runs = (self.samples + 1) as u64;
        let counters = counter_values()
            .into_iter()
            .map(|(name, v)| {
                let prev = before.iter().find(|(n, _)| *n == name).map_or(0, |&(_, v)| v);
                (name, v.saturating_sub(prev) / runs)
            })
            .filter(|&(_, delta)| delta > 0)
            .collect();
        let hists = hist_totals()
            .into_iter()
            .map(|(name, count, sum)| {
                let (pc, ps) = hists_before
                    .iter()
                    .find(|(n, _, _)| *n == name)
                    .map_or((0, 0), |&(_, c, s)| (c, s));
                (name, count.saturating_sub(pc) / runs, sum.saturating_sub(ps) / runs)
            })
            .filter(|&(_, count, _)| count > 0)
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let result = BenchResult {
            group: self.name.clone(),
            id: id.to_owned(),
            param: param.to_owned(),
            min_s: times[0],
            median_s: times[times.len() / 2],
            mean_s: times.iter().sum::<f64>() / times.len() as f64,
            samples: times.len(),
            counters,
            hists,
        };
        println!(
            "{}/{}/{}: min {} median {} ({} samples)",
            result.group,
            result.id,
            result.param,
            crate::report::fmt_secs(result.min_s),
            crate::report::fmt_secs(result.median_s),
            result.samples,
        );
        self.results.push(result);
        self.results.last().expect("just pushed")
    }

    /// All results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Consumes the group, returning its results.
    pub fn finish(self) -> Vec<BenchResult> {
        self.results
    }
}

/// Current counter values (max-gauges excluded: their deltas across a
/// benchmark run are not meaningful work counts).
fn counter_values() -> Vec<(&'static str, u64)> {
    metrics::snapshot()
        .into_iter()
        .filter(|(_, m)| m.kind == metrics::Kind::Counter)
        .map(|(n, m)| (n, m.value))
        .collect()
}

/// Current histogram totals as `(name, count, sum)`.
fn hist_totals() -> Vec<(&'static str, u64, u64)> {
    histogram::snapshot().into_iter().map(|(n, h)| (n, h.count, h.sum)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_orders_stats() {
        let mut g = BenchGroup::new("t");
        g.sample_size(5);
        let r = g.bench("sum", "small", || (0..1000u64).sum::<u64>()).clone();
        assert_eq!(r.samples, 5);
        assert!(r.min_s <= r.median_s);
        assert!(r.min_s > 0.0 || r.mean_s >= 0.0);
        assert_eq!(g.finish().len(), 1);
    }

    #[test]
    fn json_round_shape() {
        let r = BenchResult {
            group: "g".into(),
            id: "i".into(),
            param: "p".into(),
            min_s: 0.1,
            median_s: 0.2,
            mean_s: 0.2,
            samples: 3,
            counters: vec![("mine.candidate_tests", 7)],
            hists: vec![("mine.projected_db_size", 3, 12)],
        };
        let s = r.to_json().dump();
        assert!(s.contains("\"group\":\"g\"") && s.contains("\"samples\":3"));
        assert!(s.contains("\"counters\":{\"mine.candidate_tests\":7}"));
        assert!(s.contains("\"hists\":{\"mine.projected_db_size\":{\"count\":3,\"sum\":12}}"));
    }

    #[test]
    fn counters_ride_along_when_enabled() {
        metrics::set_enabled(true);
        let mut g = BenchGroup::new("t");
        g.sample_size(4);
        let r = g.bench("count", "x", || metrics::add("bench.test_counter", 2)).clone();
        metrics::set_enabled(false);
        // 5 runs (1 warmup + 4 samples) × 2 per run, averaged back to 2.
        assert!(r.counters.iter().any(|&(n, v)| n == "bench.test_counter" && v == 2));
    }
}
