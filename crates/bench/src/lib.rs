#![warn(missing_docs)]

//! Experiment harness reproducing every table and figure of the paper's
//! evaluation (§5).
//!
//! The binary `repro` drives everything:
//!
//! ```text
//! repro all            # Table 3, Figures 9–24, ablations
//! repro table3         # dataset properties + compression statistics
//! repro fig 15         # one figure's sweep (9–24)
//! repro ablation       # utility-function / ξ_old / Lemma 3.1 ablations
//! repro --scale 0.2 …  # larger datasets (1.0 = paper-sized)
//! ```
//!
//! Results print as aligned tables (same rows/series as the paper) and
//! are appended as JSON lines under `results/` so EXPERIMENTS.md entries
//! are regenerable artifacts. We reproduce *shape*, not absolute
//! milliseconds: who wins, by roughly what factor, and where the gaps
//! grow as `ξ_new` drops.

pub mod ablation;
pub mod algo;
pub mod batchwork;
pub mod figures;
pub mod harness;
pub mod perfgate;
pub mod report;
pub mod table3;

pub use algo::AlgoFamily;
pub use figures::{run_figure, run_mem_figure, FigureResult, MemFigureResult};
pub use harness::{BenchGroup, BenchResult};
pub use report::Reporter;
pub use table3::run_table3;

/// Default dataset scale: 5% of the paper's tuple counts keeps the full
/// suite in the minutes range on a laptop.
pub const DEFAULT_SCALE: f64 = 0.05;
