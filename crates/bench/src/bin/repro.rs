//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro [--scale S] [--results DIR] [--metrics-out F] [--quiet-metrics] <command>
//!
//! commands:
//!   all          Table 3 + Figures 9–24 + ablations
//!   table3       dataset properties and compression statistics
//!   figs         Figures 9–20 (in-memory sweeps)
//!   fig <N>      one figure, N in 9..=24
//!   memfigs      Figures 21–24 (memory-limited)
//!   ablation     ablations (utility fn, ξ_old, Lemma 3.1) + extension
//!                experiments (incremental, two-step, parallel)
//!   ext-compress-par
//!                compression-kernel sweep: seed linear scan vs the
//!                indexed cover kernel at 1/2/4/8 threads
//!   ext-mine-par
//!                parallel mining phase: every fresh/recycled engine
//!                pair with first-level projections fanned out over
//!                1/2/4/8 threads
//!   ext-mine-vertical
//!                horizontal vs vertical head-to-head: all four
//!                families (including bitmap Eclat) at matched ξ_new,
//!                fresh and MCP-recycled, serial and 4 threads
//!   ext-obs-hist histogram study: the projected-DB size distribution,
//!                raw vs MCP-recycled, per engine family (E9)
//!   ext-batch    batched multi-query mining (E12): a k=8 Zipf-skewed ξ
//!                fleet on the weather and connect4 analogs answered by
//!                one shared pass at ξ_min; requires the shared pass to
//!                touch ≤ 1.5× the tuples of a single solo run at ξ_min
//!                and per-query streams byte-identical at 1 and 8
//!                threads
//!   ext-ooc      out-of-core datapath (E11): stream the connect4 analog
//!                into on-disk segments, mine it under a resident budget
//!                of 1/4 the dataset, and require one pass per segment
//!                and byte-identical patterns vs in-memory at 1 and 4
//!                threads
//!   quick        CI smoke: one mine→compress→recycle round on the
//!                weather analog at a tiny scale
//!   check-metrics <file>
//!                validate a --metrics-out JSONL file (parses, every
//!                name is declared in the obs registry, and the core
//!                mining/compression counters are present)
//!   check-perf [mining.json] [compression.json]
//!                deterministic perf gate: replay each committed
//!                BENCH_*.json row's workload once and require its
//!                thread-invariant counters and histogram totals to
//!                match the archive exactly
//! ```
//!
//! `--scale` multiplies the paper's tuple counts (default 0.05).
//! `--metrics-out` enables the `gogreen_obs` counter registry and writes
//! the final snapshot as JSON lines.

use gogreen_bench::ablation;
use gogreen_bench::figures::{run_figure, run_mem_figure, FigureResult, MemFigureResult};
use gogreen_bench::perfgate;
use gogreen_bench::report::{fmt_secs, fmt_speedup, render_table, Reporter};
use gogreen_bench::table3::run_table3;
use gogreen_bench::AlgoFamily;
use gogreen_bench::DEFAULT_SCALE;
use gogreen_core::recycle_hm::RecycleHm;
use gogreen_core::{Compressor, RecyclingMiner, Strategy};
use gogreen_data::MinSupport;
use gogreen_datagen::{DatasetPreset, PresetKind};
use gogreen_miners::mine_hmine;
use gogreen_obs::{histogram, metrics, profile};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = DEFAULT_SCALE;
    let mut results_dir = "results".to_owned();
    let mut metrics_out: Option<String> = None;
    let mut profile_out: Option<String> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale expects a positive number"));
            }
            "--results" => {
                results_dir = it.next().unwrap_or_else(|| die("--results expects a directory"));
            }
            "--metrics-out" => {
                metrics_out =
                    Some(it.next().unwrap_or_else(|| die("--metrics-out expects a file")));
            }
            "--profile-out" => {
                profile_out =
                    Some(it.next().unwrap_or_else(|| die("--profile-out expects a file")));
            }
            "--quiet-metrics" => gogreen_obs::set_quiet(true),
            "--help" | "-h" => {
                print_usage();
                return;
            }
            other => rest.push(other.to_owned()),
        }
    }
    if scale <= 0.0 {
        die("--scale must be positive");
    }
    if metrics_out.is_some() {
        metrics::set_enabled(true);
    }
    if profile_out.is_some() {
        profile::reset();
        profile::set_enabled(true);
    }
    let reporter = Reporter::new(&results_dir);
    let command = rest.first().map(String::as_str).unwrap_or("all");
    match command {
        "all" => {
            cmd_table3(scale, &reporter);
            for id in 9..=20 {
                cmd_figure(id, scale, &reporter);
            }
            for id in 21..=24 {
                cmd_mem_figure(id, scale, &reporter);
            }
            cmd_ablation(scale, &reporter);
            cmd_compress_par(scale, &reporter);
            cmd_mine_par(scale, &reporter);
            cmd_mine_vertical(scale, &reporter);
        }
        "table3" => cmd_table3(scale, &reporter),
        "figs" => {
            for id in 9..=20 {
                cmd_figure(id, scale, &reporter);
            }
        }
        "memfigs" => {
            for id in 21..=24 {
                cmd_mem_figure(id, scale, &reporter);
            }
        }
        "fig" => {
            let id: u8 = rest
                .get(1)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| die("fig expects a number in 9..=24"));
            match id {
                9..=20 => cmd_figure(id, scale, &reporter),
                21..=24 => cmd_mem_figure(id, scale, &reporter),
                _ => die("figure id must be in 9..=24"),
            }
        }
        "ablation" => cmd_ablation(scale, &reporter),
        "ext-compress-par" => cmd_compress_par(scale, &reporter),
        "ext-mine-par" => cmd_mine_par(scale, &reporter),
        "ext-mine-vertical" => cmd_mine_vertical(scale, &reporter),
        "ext-obs-hist" => cmd_obs_hist(scale, &reporter),
        "ext-batch" => cmd_ext_batch(scale, &reporter),
        "ext-ooc" => cmd_ext_ooc(scale, &reporter),
        "quick" | "--quick" => cmd_quick(scale),
        "check-metrics" => {
            let file = rest.get(1).cloned().unwrap_or_else(|| die("check-metrics expects a file"));
            cmd_check_metrics(&file);
        }
        "check-perf" => {
            let mining = rest.get(1).cloned().unwrap_or_else(|| {
                concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_mining.json").to_owned()
            });
            let compression = rest.get(2).cloned().unwrap_or_else(|| {
                concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_compression.json").to_owned()
            });
            cmd_check_perf(&mining, &compression);
        }
        other => die(&format!("unknown command {other:?} (try --help)")),
    }
    if let Some(path) = metrics_out {
        let mut body = metrics::to_jsonl();
        body.push_str(&histogram::to_jsonl());
        std::fs::write(&path, body).unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
        if !gogreen_obs::quiet() {
            eprintln!("metrics ({path}):\n{}", metrics::render_table());
        }
    }
    if let Some(path) = profile_out {
        profile::set_enabled(false);
        std::fs::write(&path, profile::to_collapsed())
            .unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
        if !gogreen_obs::quiet() {
            eprintln!("profile ({path}):\n{}", profile::render_table());
        }
    }
}

fn die(msg: &str) -> ! {
    gogreen_obs::error(&format!("repro: {msg}"));
    std::process::exit(2);
}

fn print_usage() {
    println!(
        "repro [--scale S] [--results DIR] [--metrics-out F] [--profile-out F] [--quiet-metrics] \
         <all|table3|figs|memfigs|fig N|ablation|ext-compress-par|ext-mine-par|ext-mine-vertical|\n\
         ext-obs-hist|ext-batch|ext-ooc|quick|check-metrics F|check-perf [F F]>\n\
         Regenerates the paper's Table 3 and Figures 9-24, plus ablations and\n\
         extension experiments (scale {DEFAULT_SCALE} by default)."
    );
}

/// Counters every recycled run must touch; `check-metrics` requires
/// them, CI runs `quick --metrics-out` and then `check-metrics`.
const REQUIRED_COUNTERS: &[&str] = &[
    "compress.runs",
    "compress.tuples_total",
    "compress.groups_emitted",
    "mine.candidate_tests",
    "mine.group_hits",
    "mine.projected_dbs",
];

/// One mine→compress→recycle round on the weather analog, small enough
/// for a CI smoke job but touching every instrumented phase.
fn cmd_quick(scale: f64) {
    let preset = DatasetPreset::new(PresetKind::Weather, scale.min(0.02));
    let db = preset.generate();
    let fp = mine_hmine(&db, preset.xi_old());
    let (cdb, stats) = Compressor::new(Strategy::Mcp).compress_with_stats(&db, &fp);
    let patterns = RecycleHm.mine(&cdb, MinSupport::percent(2.0));
    println!(
        "quick: weather ×{} — {} tuples, {} recycled patterns, ratio {:.3}, {} patterns at 2% in {}",
        preset.scale,
        db.len(),
        fp.len(),
        stats.ratio,
        patterns.len(),
        fmt_secs(stats.duration.as_secs_f64()),
    );
}

/// E12: batched multi-query mining. A k=8 Zipf-skewed ξ fleet over the
/// preset's sweep, answered by one shared pass at ξ_min (the sweep
/// floor) and demultiplexed per query. **Gates** (CI's batch-smoke job
/// and the issue's acceptance criteria): the batched run's
/// `mine.tuple_touches` must be at most 1.5× a *single* solo run at
/// ξ_min, and every per-query stream must be byte-identical at 1 and 8
/// threads.
fn cmd_ext_batch(scale: f64, reporter: &Reporter) {
    use gogreen_bench::batchwork;
    use gogreen_util::pool::Parallelism;
    use std::time::Instant;

    println!(
        "\n== Extension: batched multi-query mining — one shared pass answers a \
         k=8 Zipf fleet (weather + connect4, scale {scale}) ==\n"
    );
    let was_enabled = metrics::enabled();
    metrics::set_enabled(true);
    let touches = || metrics::get("mine.tuple_touches").unwrap_or(0);
    let pattern_bytes = |tag: &str, set: &gogreen_data::PatternSet| -> Vec<u8> {
        let p =
            std::env::temp_dir().join(format!("gogreen-ext-batch-{tag}-{}", std::process::id()));
        gogreen_data::pattern_io::write_patterns_file(set, p.display().to_string())
            .unwrap_or_else(|e| die(&format!("writing {p:?}: {e}")));
        let bytes = std::fs::read(&p).unwrap_or_else(|e| die(&format!("reading {p:?}: {e}")));
        let _ = std::fs::remove_file(&p);
        bytes
    };
    let mut table: Vec<Vec<String>> = Vec::new();
    for kind in [PresetKind::Weather, PresetKind::Connect4] {
        let preset = DatasetPreset::new(kind, scale);
        let db = preset.generate();
        let ladder = batchwork::zipf_ladder(&preset.sweep(), 8);
        let xi_min =
            ladder.iter().map(|xi| xi.to_absolute(db.len())).min().expect("non-empty ladder");

        // The batched run at 1 thread: one shared pass at ξ_min.
        let before = touches();
        let t0 = Instant::now();
        let out1 = batchwork::fleet(&ladder)
            .run(&db, "hmine")
            .unwrap_or_else(|e| die(&format!("batched run: {e}")));
        let secs_batched = t0.elapsed().as_secs_f64();
        let touches_batched = touches() - before;
        if !out1.report.plan.rejected.is_empty() {
            die("pure-support fleet unexpectedly rejected a query");
        }

        // The same fleet at 8 threads must produce byte-identical
        // per-query streams.
        let out8 = batchwork::fleet(&ladder)
            .with_parallelism(Parallelism::threads(8))
            .run(&db, "hmine")
            .unwrap_or_else(|e| die(&format!("batched run (t8): {e}")));
        for (i, (a, b)) in out1.results.iter().zip(&out8.results).enumerate() {
            if pattern_bytes(&format!("t1-q{i}"), a) != pattern_bytes(&format!("t8-q{i}"), b) {
                die(&format!("query #{i}: stream diverges between 1 and 8 threads"));
            }
        }

        // Reference costs: the 8 solo runs the batch replaces, and the
        // single ξ_min run that lower-bounds the shared pass.
        let before = touches();
        let t0 = Instant::now();
        for &xi in &ladder {
            AlgoFamily::HMine.run_baseline(&db, xi);
        }
        let secs_solo = t0.elapsed().as_secs_f64();
        let touches_solo = touches() - before;
        let before = touches();
        AlgoFamily::HMine.run_baseline(&db, MinSupport::Absolute(xi_min));
        let touches_floor = touches() - before;

        let vs_floor = touches_batched as f64 / touches_floor.max(1) as f64;
        let vs_solo = touches_batched as f64 / touches_solo.max(1) as f64;
        if vs_floor > 1.5 {
            die(&format!(
                "{}: batched pass touches {:.2}× the single ξ_min run (> 1.5× gate)",
                preset.name(),
                vs_floor
            ));
        }
        table.push(vec![
            preset.name().to_owned(),
            format!("{xi_min}"),
            touches_batched.to_string(),
            touches_solo.to_string(),
            touches_floor.to_string(),
            format!("{vs_solo:.3}"),
            format!("{vs_floor:.3}"),
            fmt_secs(secs_batched),
            fmt_secs(secs_solo),
        ]);
        reporter
            .save_json(
                "ext_batch",
                &gogreen_util::Json::obj([
                    ("dataset", gogreen_util::Json::from(preset.name())),
                    ("k", gogreen_util::Json::from(ladder.len())),
                    ("xi_min", gogreen_util::Json::from(xi_min)),
                    ("touches_batched", gogreen_util::Json::from(touches_batched)),
                    ("touches_solo_total", gogreen_util::Json::from(touches_solo)),
                    ("touches_floor", gogreen_util::Json::from(touches_floor)),
                    ("ratio_vs_solo", gogreen_util::Json::from(vs_solo)),
                    ("ratio_vs_floor", gogreen_util::Json::from(vs_floor)),
                    ("secs_batched", gogreen_util::Json::from(secs_batched)),
                    ("secs_solo_total", gogreen_util::Json::from(secs_solo)),
                    ("identical", gogreen_util::Json::from(true)),
                ]),
            )
            .expect("save extension");
    }
    metrics::set_enabled(was_enabled);
    print!(
        "{}",
        render_table(
            &[
                "dataset",
                "ξ_min",
                "touches batched",
                "touches 8×solo",
                "touches ξ_min solo",
                "vs solo",
                "vs floor",
                "time batched",
                "time 8×solo",
            ],
            &table
        )
    );
    println!(
        "\next-batch: ok — shared pass ≤ 1.5× a single ξ_min run on both analogs, \
         per-query streams byte-identical at 1 and 8 threads"
    );
}

/// E11: the out-of-core datapath. Streams the connect4 analog into
/// on-disk segments (never materializing it), mines at the sweep floor
/// under a resident budget of 1/4 the dataset, and **requires** one full
/// payload pass per segment and a pattern stream byte-identical to the
/// in-memory run at 1 and 4 threads — this is the acceptance gate CI's
/// ooc-smoke job runs.
fn cmd_ext_ooc(scale: f64, reporter: &Reporter) {
    use gogreen_storage::{MemoryBudget, OocMiner, SegmentWriter, SegmentedDb};
    use gogreen_util::pool::Parallelism;
    use std::time::Instant;

    println!(
        "\n== Extension: out-of-core mining under a bounded resident budget \
         (connect4, ξ_new = sweep floor, scale {scale}) ==\n"
    );
    let preset = DatasetPreset::new(PresetKind::Connect4, scale);
    let dir = std::env::temp_dir().join(format!("gogreen-ext-ooc-{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap_or_else(|e| die(&format!("clearing {dir:?}: {e}")));
    }
    // Stream rows straight into segments — peak write-side memory is one
    // open segment, regardless of dataset size.
    let mut w = SegmentWriter::create(&dir, 32 << 10)
        .unwrap_or_else(|e| die(&format!("creating {dir:?}: {e}")));
    preset.for_each_transaction(|row| {
        w.push_row(row).unwrap_or_else(|e| die(&format!("writing segment row: {e}")));
    });
    let segments = w.finish().unwrap_or_else(|e| die(&format!("sealing {dir:?}: {e}")));
    let seg = SegmentedDb::open(&dir).unwrap_or_else(|e| die(&format!("opening {dir:?}: {e}")));
    let budget = (seg.total_payload_bytes() / 4) as usize;
    if seg.max_segment_bytes() > budget {
        die("a single segment exceeds the 1/4 budget; raise --scale");
    }
    let seg = seg.with_budget(MemoryBudget::bytes(budget));
    let xi_new = *preset.sweep().last().expect("non-empty sweep");

    // In-memory reference stream (canonical sorted pattern file bytes).
    let db = preset.generate();
    let t0 = Instant::now();
    let reference = mine_hmine(&db, xi_new);
    let mem_s = t0.elapsed().as_secs_f64();
    let fp_file = |tag: &str, set: &gogreen_data::PatternSet| -> Vec<u8> {
        let p =
            std::env::temp_dir().join(format!("gogreen-ext-ooc-fp-{tag}-{}", std::process::id()));
        gogreen_data::pattern_io::write_patterns_file(set, p.display().to_string())
            .unwrap_or_else(|e| die(&format!("writing {p:?}: {e}")));
        let bytes = std::fs::read(&p).unwrap_or_else(|e| die(&format!("reading {p:?}: {e}")));
        let _ = std::fs::remove_file(&p);
        bytes
    };
    let expected = fp_file("mem", &reference);

    let was_enabled = metrics::enabled();
    metrics::set_enabled(true);
    let mut table: Vec<Vec<String>> = vec![vec![
        "in-memory".into(),
        "1".into(),
        fmt_secs(mem_s),
        reference.len().to_string(),
        "-".into(),
        "-".into(),
        "-".into(),
    ]];
    for threads in [1usize, 4] {
        let before = metrics::get("storage.segments_read").unwrap_or(0);
        let t0 = Instant::now();
        let patterns = OocMiner::new(&seg)
            .with_parallelism(Parallelism::threads(threads))
            .mine(xi_new)
            .unwrap_or_else(|e| die(&format!("out-of-core mining: {e}")));
        let secs = t0.elapsed().as_secs_f64();
        let passes = metrics::get("storage.segments_read").unwrap_or(0) - before;
        let peak = metrics::get("storage.resident_peak").unwrap_or(0);
        if passes != segments as u64 {
            die(&format!("expected one pass per segment ({segments}), measured {passes}"));
        }
        if peak as usize > budget {
            die(&format!("resident peak {peak} exceeds the {budget}-byte budget"));
        }
        if fp_file(&format!("t{threads}"), &patterns) != expected {
            die(&format!("t{threads}: out-of-core pattern stream diverges from in-memory"));
        }
        table.push(vec![
            "out-of-core".into(),
            threads.to_string(),
            fmt_secs(secs),
            patterns.len().to_string(),
            format!("{segments}"),
            format!("{passes}"),
            format!("{} KiB", peak >> 10),
        ]);
        reporter
            .save_json(
                "ext_ooc",
                &gogreen_util::Json::obj([
                    ("threads", gogreen_util::Json::from(threads)),
                    ("secs", gogreen_util::Json::from(secs)),
                    ("patterns", gogreen_util::Json::from(patterns.len())),
                    ("segments", gogreen_util::Json::from(segments)),
                    ("passes", gogreen_util::Json::from(passes)),
                    ("resident_peak", gogreen_util::Json::from(peak)),
                    ("budget", gogreen_util::Json::from(budget)),
                    ("identical", gogreen_util::Json::from(true)),
                ]),
            )
            .expect("save extension");
    }
    metrics::set_enabled(was_enabled);
    std::fs::remove_dir_all(&dir).unwrap_or_else(|e| die(&format!("removing {dir:?}: {e}")));
    print!(
        "{}",
        render_table(
            &["datapath", "threads", "time", "patterns", "segments", "passes", "resident peak"],
            &table
        )
    );
    println!(
        "\next-ooc: ok — {segments} segments, budget {} KiB (dataset {} KiB), \
         byte-identical pattern stream at 1 and 4 threads",
        budget >> 10,
        seg.total_payload_bytes() >> 10,
    );
}

/// Validates a `--metrics-out` file: every line parses as a JSON object
/// — a counter line with `metric`/`kind`/`value` or a histogram line
/// with `hist`/`count`/`sum` — every name (`mine.*`, `storage.*`, …) is
/// declared in the obs registry, and the core counters are present.
fn cmd_check_metrics(path: &str) {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("reading {path}: {e}")));
    let mut seen: Vec<String> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let json = gogreen_util::Json::parse(line)
            .unwrap_or_else(|e| die(&format!("{path}:{}: invalid JSON: {e}", lineno + 1)));
        if let Some(hist) = json.get("hist").and_then(|j| j.as_str()) {
            for field in ["count", "sum"] {
                if json.get(field).and_then(|j| j.as_u64()).is_none() {
                    die(&format!(
                        "{path}:{}: hist {hist:?} missing numeric \"{field}\"",
                        lineno + 1
                    ));
                }
            }
            if gogreen_obs::registry::lookup(hist).is_none() {
                die(&format!("{path}:{}: hist {hist:?} not in the metric registry", lineno + 1));
            }
            continue;
        }
        let metric = json
            .get("metric")
            .and_then(|j| j.as_str())
            .unwrap_or_else(|| die(&format!("{path}:{}: missing \"metric\"", lineno + 1)));
        if gogreen_obs::registry::lookup(metric).is_none() {
            die(&format!("{path}:{}: metric {metric:?} not in the metric registry", lineno + 1));
        }
        if json.get("value").and_then(|j| j.as_u64()).is_none() {
            die(&format!("{path}:{}: missing numeric \"value\"", lineno + 1));
        }
        if json.get("kind").and_then(|j| j.as_str()).is_none() {
            die(&format!("{path}:{}: missing \"kind\"", lineno + 1));
        }
        seen.push(metric.to_owned());
    }
    for required in REQUIRED_COUNTERS {
        if !seen.iter().any(|s| s == required) {
            die(&format!("{path}: required counter {required:?} missing"));
        }
    }
    println!("check-metrics: {path} ok ({} metrics, all required counters present)", seen.len());
}

/// Deterministic perf gate: replays every committed `BENCH_*.json`
/// row's workload once — serially, since the gated names are
/// thread-invariant and one run therefore covers every `tN` row — and
/// fails listing every counter or histogram-total drift.
fn cmd_check_perf(mining_path: &str, compression_path: &str) {
    let mut drifts: Vec<String> = Vec::new();
    let mut compared = 0usize;
    check_perf_mining(mining_path, &mut drifts, &mut compared);
    check_perf_compression(compression_path, &mut drifts, &mut compared);
    if drifts.is_empty() {
        println!(
            "check-perf: {compared} baseline rows match \
             (thread-invariant counters and histogram totals)"
        );
    } else {
        for d in &drifts {
            eprintln!("check-perf: DRIFT {d}");
        }
        die(&format!("{} drift(s) across {} compared rows", drifts.len(), compared));
    }
}

fn load_baseline(path: &str) -> Vec<perfgate::BaselineRow> {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("reading {path}: {e}")));
    perfgate::parse_baseline(&text).unwrap_or_else(|e| die(&format!("{path}: {e}")))
}

/// Compares `obs` against every baseline row with this exact
/// `(id, param)`, accumulating drifts and marking the rows consumed so
/// leftovers can be reported as un-replayable.
fn compare_rows(
    rows: &[perfgate::BaselineRow],
    matched: &mut [bool],
    id: &str,
    param: &str,
    obs: &perfgate::Observed,
    drifts: &mut Vec<String>,
    compared: &mut usize,
) {
    for (i, row) in rows.iter().enumerate() {
        if row.id == id && row.param == param {
            drifts.extend(perfgate::compare(row, obs));
            matched[i] = true;
            *compared += 1;
        }
    }
}

fn check_perf_mining(path: &str, drifts: &mut Vec<String>, compared: &mut usize) {
    let rows = load_baseline(path);
    let mut matched = vec![false; rows.len()];
    for kind in [PresetKind::Connect4, PresetKind::Weather, PresetKind::Pumsb] {
        let prefix = format!("{}/t", dataset_name(kind));
        if !rows.iter().any(|r| r.param.starts_with(&prefix)) {
            continue;
        }
        // The mining bench archives at scale 0.01; replaying the same
        // preset at the same scale and ξ reproduces the same work.
        let preset = DatasetPreset::new(kind, 0.01);
        let db = preset.generate();
        let fp = mine_hmine(&db, preset.xi_old());
        let cdb = Compressor::new(Strategy::Mcp).compress(&db, &fp);
        let xi_new = *preset.sweep().last().expect("non-empty sweep");
        let ladder = gogreen_bench::batchwork::zipf_ladder(&preset.sweep(), 8);
        for family in AlgoFamily::with_vertical() {
            perfgate::reset_registries();
            let raw = perfgate::measure(|| family.run_baseline(&db, xi_new).patterns);
            perfgate::reset_registries();
            let rec = perfgate::measure(|| family.run_recycled(&cdb, xi_new).patterns);
            perfgate::reset_registries();
            let batched = perfgate::measure(|| {
                gogreen_bench::batchwork::run_batched(
                    &db,
                    family,
                    &ladder,
                    gogreen_util::pool::Parallelism::serial(),
                )
            });
            let recycled_id = format!("{}-MCP", family.tag());
            let batch_id = format!("{}-Batch8", family.tag());
            for (i, row) in rows.iter().enumerate() {
                if !row.param.starts_with(&prefix) {
                    continue;
                }
                let obs = if row.id == family.baseline_name() {
                    &raw
                } else if row.id == recycled_id {
                    &rec
                } else if row.id == batch_id {
                    &batched
                } else {
                    continue;
                };
                drifts.extend(perfgate::compare(row, obs));
                matched[i] = true;
                *compared += 1;
            }
        }
    }
    for (i, row) in rows.iter().enumerate() {
        if !matched[i] {
            drifts.push(format!(
                "{}/{}: no replay workload for this baseline row",
                row.id, row.param
            ));
        }
    }
}

fn check_perf_compression(path: &str, drifts: &mut Vec<String>, compared: &mut usize) {
    let rows = load_baseline(path);
    let mut matched = vec![false; rows.len()];
    for kind in [PresetKind::Connect4, PresetKind::Weather] {
        let preset = DatasetPreset::new(kind, 0.01);
        let db = preset.generate();
        let fp = mine_hmine(&db, preset.xi_old());
        for strategy in [Strategy::Mcp, Strategy::Mlp] {
            perfgate::reset_registries();
            let obs = perfgate::measure(|| Compressor::new(strategy).compress(&db, &fp));
            compare_rows(
                &rows,
                &mut matched,
                strategy.suffix(),
                preset.name(),
                &obs,
                drifts,
                compared,
            );
        }
        // Kernel-sweep replica (same ξ_old ladder as the bench). The
        // recycled-pattern count is embedded in the param, so a miner
        // drift changes the key and both sides report unmatched rows.
        let supports: &[f64] = match kind {
            PresetKind::Connect4 => &[0.95, 0.85, 0.75],
            _ => &[0.05, 0.02, 0.01],
        };
        for &rel in supports {
            let fp = mine_hmine(&db, MinSupport::Relative(rel));
            let compressor = Compressor::new(Strategy::Mcp);
            let param = format!("{}/fp{}", preset.name(), fp.len());
            perfgate::reset_registries();
            let linear = perfgate::measure(|| compressor.compress_reference(&db, &fp));
            compare_rows(&rows, &mut matched, "linear", &param, &linear, drifts, compared);
            perfgate::reset_registries();
            let indexed = perfgate::measure(|| compressor.compress(&db, &fp));
            compare_rows(&rows, &mut matched, "indexed", &param, &indexed, drifts, compared);
        }
    }
    for (i, row) in rows.iter().enumerate() {
        if !matched[i] {
            drifts.push(format!(
                "{}/{}: no replay workload for this baseline row",
                row.id, row.param
            ));
        }
    }
}

/// E9: the projected-DB size distribution, raw vs MCP-recycled, per
/// engine family on the dense connect4 analog. Recycling shrinks the
/// database every projection slices, so the whole distribution should
/// shift left at an unchanged pattern count.
fn cmd_obs_hist(scale: f64, reporter: &Reporter) {
    println!(
        "\n== Extension: projected-DB size distribution, raw vs MCP-recycled \
         (connect4, ξ_new = sweep floor, scale {scale}) ==\n"
    );
    let preset = DatasetPreset::new(PresetKind::Connect4, scale);
    let db = preset.generate();
    let fp = mine_hmine(&db, preset.xi_old());
    let cdb = Compressor::new(Strategy::Mcp).compress(&db, &fp);
    let xi_new = *preset.sweep().last().expect("non-empty sweep");
    let was_enabled = metrics::enabled();
    metrics::set_enabled(true);
    let mut table: Vec<Vec<String>> = Vec::new();
    for family in AlgoFamily::with_vertical() {
        for recycled in [false, true] {
            histogram::reset();
            let (engine, patterns) = if recycled {
                (format!("{}-MCP", family.tag()), family.run_recycled(&cdb, xi_new).patterns)
            } else {
                (family.baseline_name().to_owned(), family.run_baseline(&db, xi_new).patterns)
            };
            let h = histogram::get("mine.projected_db_size").unwrap_or_default();
            table.push(vec![
                engine.clone(),
                h.count.to_string(),
                format!("{:.1}", h.mean()),
                h.quantile_upper(0.5).to_string(),
                h.quantile_upper(0.9).to_string(),
                h.quantile_upper(1.0).to_string(),
                patterns.to_string(),
            ]);
            reporter
                .save_json(
                    "ext_obs_hist",
                    &gogreen_util::Json::obj([
                        ("engine", gogreen_util::Json::from(engine.as_str())),
                        ("recycled", gogreen_util::Json::from(recycled)),
                        ("patterns", gogreen_util::Json::from(patterns)),
                        ("hist", h.to_json()),
                    ]),
                )
                .expect("save extension");
        }
    }
    metrics::set_enabled(was_enabled);
    print!(
        "{}",
        render_table(
            &["engine", "projections", "mean size", "p50 ≤", "p90 ≤", "max ≤", "patterns"],
            &table
        )
    );
}

fn cmd_table3(scale: f64, reporter: &Reporter) {
    println!("\n== Table 3: dataset properties and compression statistics (scale {scale}) ==\n");
    let rows = run_table3(scale);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.tuples.to_string(),
                format!("{:.1}", r.avg_len),
                r.items.to_string(),
                format!("{}%", r.xi_old_pct),
                format!("{} (paper {})", r.patterns, r.paper_patterns),
                format!("{} (paper {})", r.max_len, r.paper_max_len),
                fmt_secs(r.t_io_mcp),
                fmt_secs(r.t_pipe_mcp),
                fmt_secs(r.t_io_mlp),
                fmt_secs(r.t_pipe_mlp),
                format!("{:.3}", r.ratio_mcp),
                format!("{:.3}", r.ratio_mlp),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "dataset",
                "tuples",
                "avg",
                "items",
                "ξ_old",
                "#patterns",
                "maxlen",
                "MCP io",
                "MCP pipe",
                "MLP io",
                "MLP pipe",
                "R(MCP)",
                "R(MLP)",
            ],
            &table,
        )
    );
    for r in &rows {
        reporter.save_json("table3", r).expect("save table3");
    }
}

fn cmd_figure(id: u8, scale: f64, reporter: &Reporter) {
    let res: FigureResult = run_figure(id, scale);
    let base = res.spec.family.baseline_name();
    let tag = res.spec.family.tag();
    println!(
        "\n== Figure {id}: {base} vs {tag}-MCP vs {tag}-MLP on {} (scale {scale}{}) ==",
        dataset_name(res.spec.dataset),
        if res.spec.log_y { ", log-y in the paper" } else { "" }
    );
    println!(
        "   ξ_old={}%: {} recycled patterns, mined in {}; compression MCP {} (R={:.3}) MLP {} (R={:.3})\n",
        res.xi_old_pct,
        res.recycled_patterns,
        fmt_secs(res.prep_mine_s),
        fmt_secs(res.mcp_compression.secs),
        res.mcp_compression.ratio,
        fmt_secs(res.mlp_compression.secs),
        res.mlp_compression.ratio,
    );
    let table: Vec<Vec<String>> = res
        .rows
        .iter()
        .map(|r| {
            vec![
                format!("{}%", r.xi_new_pct),
                r.patterns.to_string(),
                fmt_secs(r.baseline_s),
                fmt_secs(r.mcp_s),
                fmt_secs(r.mlp_s),
                fmt_speedup(r.baseline_s, r.mcp_s),
                fmt_speedup(r.baseline_s, r.mlp_s),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "ξ_new",
                "patterns",
                base,
                &format!("{tag}-MCP"),
                &format!("{tag}-MLP"),
                "MCP speedup",
                "MLP speedup"
            ],
            &table,
        )
    );
    reporter.save_json(&format!("fig{id}"), &res).expect("save figure");
}

fn cmd_mem_figure(id: u8, scale: f64, reporter: &Reporter) {
    let res: MemFigureResult = run_mem_figure(id, scale);
    println!(
        "\n== Figure {id}: memory-limited H-Mine vs HM-MCP on {} (scale {scale}, budgets 4/8 MiB × scale) ==\n",
        dataset_name(res.dataset)
    );
    let table: Vec<Vec<String>> = res
        .rows
        .iter()
        .map(|r| {
            vec![
                format!("{}MiB", r.budget_mib),
                format!("{}%", r.xi_new_pct),
                r.patterns.to_string(),
                fmt_secs(r.hmine_s),
                fmt_secs(r.hm_mcp_s),
                fmt_speedup(r.hmine_s, r.hm_mcp_s),
                r.hmine_spills.to_string(),
                r.hm_mcp_spills.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "budget",
                "ξ_new",
                "patterns",
                "H-Mine",
                "HM-MCP",
                "speedup",
                "HM spills",
                "MCP spills"
            ],
            &table,
        )
    );
    reporter.save_json(&format!("fig{id}"), &res).expect("save mem figure");
}

fn cmd_ablation(scale: f64, reporter: &Reporter) {
    println!("\n== Ablation 1: utility functions (connect4, lowest ξ_new of the sweep) ==\n");
    let rows = ablation::utility_ablation(PresetKind::Connect4, scale);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.strategy.to_owned(),
                format!("{:.3}", r.ratio),
                fmt_secs(r.compress_s),
                fmt_secs(r.mine_s),
            ]
        })
        .collect();
    print!("{}", render_table(&["strategy", "ratio", "compress", "HM mine"], &table));
    for r in &rows {
        reporter.save_json("ablation_utility", r).expect("save ablation");
    }

    println!("\n== Ablation 2: ξ_old sensitivity (connect4, fixed lowest ξ_new) ==\n");
    let rows = ablation::xi_old_sensitivity(PresetKind::Connect4, scale);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}%", r.xi_old_pct),
                r.recycled_patterns.to_string(),
                fmt_secs(r.prep_s),
                format!("{:.3}", r.ratio),
                fmt_secs(r.mine_s),
            ]
        })
        .collect();
    print!("{}", render_table(&["ξ_old", "patterns", "prep", "ratio", "HM-MCP mine"], &table));
    for r in &rows {
        reporter.save_json("ablation_xi_old", r).expect("save ablation");
    }

    println!("\n== Extension: incremental recycling across update batches (connect4) ==\n");
    let rows = ablation::incremental_experiment(PresetKind::Connect4, scale);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.tuples.to_string(),
                r.patterns.to_string(),
                fmt_secs(r.recycled_s),
                fmt_secs(r.scratch_s),
                fmt_speedup(r.scratch_s, r.recycled_s),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(&["tuples", "patterns", "incremental", "from scratch", "speedup"], &table)
    );
    for r in &rows {
        reporter.save_json("ext_incremental", r).expect("save extension");
    }

    println!("\n== Extension: two-step mining, the paper's stated future work (connect4) ==\n");
    let rows = ablation::two_step_experiment(PresetKind::Connect4, scale);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}%", r.target_pct),
                r.intermediate_abs.to_string(),
                r.patterns.to_string(),
                fmt_secs(r.single_s),
                fmt_secs(r.two_step_s),
                fmt_secs(r.two_step_mine_s),
                fmt_speedup(r.single_s, r.two_step_s),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &["target ξ", "ξ_mid", "patterns", "single-step", "two-step", "(mine)", "speedup"],
            &table,
        )
    );
    for r in &rows {
        reporter.save_json("ext_twostep", r).expect("save extension");
    }

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "\n== Extension: parallel recycled mining (weather, RP-Mine, lowest ξ_new; {cores} core(s) available) ==\n"
    );
    let rows = ablation::parallel_experiment(PresetKind::Weather, scale);
    let base = rows[0].secs;
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.threads.to_string(),
                r.patterns.to_string(),
                fmt_secs(r.secs),
                fmt_speedup(base, r.secs),
            ]
        })
        .collect();
    print!("{}", render_table(&["threads", "patterns", "time", "vs 1 thread"], &table));
    for r in &rows {
        reporter.save_json("ext_parallel", r).expect("save extension");
    }

    println!("\n== Ablation 3: Lemma 3.1 single-group shortcut (connect4, RP-Mine) ==\n");
    let a = ablation::lemma_ablation(PresetKind::Connect4, scale);
    print!(
        "{}",
        render_table(
            &["with shortcut", "without", "speedup", "patterns"],
            &[vec![
                fmt_secs(a.with_shortcut_s),
                fmt_secs(a.without_shortcut_s),
                fmt_speedup(a.without_shortcut_s, a.with_shortcut_s),
                a.patterns.to_string(),
            ]],
        )
    );
    reporter.save_json("ablation_lemma", &a).expect("save ablation");
}

fn cmd_compress_par(scale: f64, reporter: &Reporter) {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    for dataset in
        [PresetKind::Connect4, PresetKind::Pumsb, PresetKind::Weather, PresetKind::Forest]
    {
        println!(
            "\n== Extension: compression kernel on {} (MCP, scale {scale}; {cores} core(s) available) ==\n",
            dataset_name(dataset)
        );
        let rows = ablation::compress_kernel_experiment(dataset, scale);
        let linear_s = rows[0].secs;
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.kernel.to_owned(),
                    r.threads.to_string(),
                    fmt_secs(r.secs),
                    fmt_speedup(linear_s, r.secs),
                    r.groups.to_string(),
                ]
            })
            .collect();
        print!("{}", render_table(&["kernel", "threads", "time", "vs linear", "groups"], &table));
        for r in &rows {
            reporter.save_json("ext_compress_par", r).expect("save extension");
        }
    }
}

fn cmd_mine_par(scale: f64, reporter: &Reporter) {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    for dataset in [PresetKind::Connect4, PresetKind::Weather] {
        println!(
            "\n== Extension: parallel mining phase on {} (ξ_new = sweep floor, scale {scale}; \
             {cores} core(s) available) ==\n",
            dataset_name(dataset)
        );
        let rows = ablation::mine_par_experiment(dataset, scale);
        let base_of = |engine: &str| {
            rows.iter()
                .find(|r| r.engine == engine && r.threads == 1)
                .map(|r| r.secs)
                .expect("single-thread reference row")
        };
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.engine.clone(),
                    r.threads.to_string(),
                    fmt_secs(r.secs),
                    fmt_speedup(base_of(&r.engine), r.secs),
                    r.patterns.to_string(),
                ]
            })
            .collect();
        print!(
            "{}",
            render_table(&["engine", "threads", "time", "vs 1 thread", "patterns"], &table)
        );
        for r in &rows {
            reporter.save_json("ext_mine_par", r).expect("save extension");
        }
    }
}

fn cmd_mine_vertical(scale: f64, reporter: &Reporter) {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    for dataset in [PresetKind::Connect4, PresetKind::Weather] {
        println!(
            "\n== Extension: horizontal vs vertical mining on {} (ξ_new = sweep floor, matched \
             across families, scale {scale}; {cores} core(s) available) ==\n",
            dataset_name(dataset)
        );
        let rows = ablation::mine_vertical_experiment(dataset, scale);
        let best_horizontal_of = |threads: usize| {
            rows.iter()
                .filter(|r| r.threads == threads && !r.engine.starts_with("Eclat"))
                .filter(|r| !r.engine.starts_with("VT"))
                .map(|r| r.secs)
                .fold(f64::INFINITY, f64::min)
        };
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.engine.clone(),
                    r.threads.to_string(),
                    fmt_secs(r.secs),
                    fmt_speedup(best_horizontal_of(r.threads), r.secs),
                    r.patterns.to_string(),
                ]
            })
            .collect();
        print!(
            "{}",
            render_table(&["engine", "threads", "time", "vs best horiz.", "patterns"], &table)
        );
        for r in &rows {
            reporter.save_json("ext_mine_vertical", r).expect("save extension");
        }

        println!(
            "\n-- Representation ablation on {} (vt family, forced --vt-repr modes, serial) --\n",
            dataset_name(dataset)
        );
        let ablation_rows = ablation::vt_repr_ablation(dataset, scale);
        let table: Vec<Vec<String>> = ablation_rows
            .iter()
            .map(|r| {
                vec![
                    r.mode.to_string(),
                    r.substrate.to_string(),
                    fmt_secs(r.secs),
                    r.bitmap_words.to_string(),
                    (r.tidlist_elems + r.diffset_words).to_string(),
                    r.repr_switches.to_string(),
                    format!("{:.1}", r.arena_bytes as f64 / 1024.0),
                    r.patterns.to_string(),
                ]
            })
            .collect();
        print!(
            "{}",
            render_table(
                &[
                    "repr",
                    "substrate",
                    "time",
                    "bm words",
                    "list elems",
                    "switches",
                    "arena KiB",
                    "patterns"
                ],
                &table
            )
        );
        for r in &ablation_rows {
            reporter.save_json("ext_mine_vertical", r).expect("save extension");
        }
    }
}

fn dataset_name(kind: PresetKind) -> &'static str {
    match kind {
        PresetKind::Weather => "weather",
        PresetKind::Forest => "forest",
        PresetKind::Connect4 => "connect4",
        PresetKind::Pumsb => "pumsb",
    }
}
