//! Criterion microbenchmarks for the H-Mine pair (Figures 9/12/15/18 in
//! miniature): the non-recycling baseline against its MCP and MLP
//! recycling variants on one dense and one sparse dataset.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gogreen_core::recycle_hm::RecycleHm;
use gogreen_core::{Compressor, RecyclingMiner, Strategy};
use gogreen_data::CountSink;
use gogreen_datagen::{DatasetPreset, PresetKind};
use gogreen_miners::{mine_hmine, HMine, Miner};

fn bench_hmine(c: &mut Criterion) {
    let mut group = c.benchmark_group("hmine");
    group.sample_size(15);
    for kind in [PresetKind::Connect4, PresetKind::Weather] {
        let preset = DatasetPreset::new(kind, 0.01);
        let db = preset.generate();
        let fp = mine_hmine(&db, preset.xi_old());
        let xi_new = preset.sweep()[2];
        let cdb_mcp = Compressor::new(Strategy::Mcp).compress(&db, &fp);
        let cdb_mlp = Compressor::new(Strategy::Mlp).compress(&db, &fp);
        group.bench_with_input(BenchmarkId::new("H-Mine", preset.name()), &db, |b, db| {
            b.iter(|| {
                let mut sink = CountSink::new();
                HMine.mine_into(db, xi_new, &mut sink);
                sink.count()
            });
        });
        group.bench_with_input(
            BenchmarkId::new("HM-MCP", preset.name()),
            &cdb_mcp,
            |b, cdb| {
                b.iter(|| {
                    let mut sink = CountSink::new();
                    RecycleHm.mine_into(cdb, xi_new, &mut sink);
                    sink.count()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("HM-MLP", preset.name()),
            &cdb_mlp,
            |b, cdb| {
                b.iter(|| {
                    let mut sink = CountSink::new();
                    RecycleHm.mine_into(cdb, xi_new, &mut sink);
                    sink.count()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_hmine);
criterion_main!(benches);
