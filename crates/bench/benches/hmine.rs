//! Microbenchmarks for the H-Mine pair (Figures 9/12/15/18 in
//! miniature): the non-recycling baseline against its MCP and MLP
//! recycling variants on one dense and one sparse dataset.

use gogreen_bench::BenchGroup;
use gogreen_core::recycle_hm::RecycleHm;
use gogreen_core::{Compressor, RecyclingMiner, Strategy};
use gogreen_data::CountSink;
use gogreen_datagen::{DatasetPreset, PresetKind};
use gogreen_miners::{mine_hmine, HMine, Miner};

fn main() {
    let mut group = BenchGroup::new("hmine");
    group.sample_size(15);
    for kind in [PresetKind::Connect4, PresetKind::Weather] {
        let preset = DatasetPreset::new(kind, 0.01);
        let db = preset.generate();
        let fp = mine_hmine(&db, preset.xi_old());
        let xi_new = preset.sweep()[2];
        let cdb_mcp = Compressor::new(Strategy::Mcp).compress(&db, &fp);
        let cdb_mlp = Compressor::new(Strategy::Mlp).compress(&db, &fp);
        group.bench("H-Mine", preset.name(), || {
            let mut sink = CountSink::new();
            HMine.mine_into(&db, xi_new, &mut sink);
            sink.count()
        });
        group.bench("HM-MCP", preset.name(), || {
            let mut sink = CountSink::new();
            RecycleHm.mine_into(&cdb_mcp, xi_new, &mut sink);
            sink.count()
        });
        group.bench("HM-MLP", preset.name(), || {
            let mut sink = CountSink::new();
            RecycleHm.mine_into(&cdb_mlp, xi_new, &mut sink);
            sink.count()
        });
    }
}
