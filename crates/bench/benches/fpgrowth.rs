//! Microbenchmarks for the FP-tree pair (Figures 10/13/16/19 in
//! miniature).

use gogreen_bench::BenchGroup;
use gogreen_core::recycle_fp::RecycleFp;
use gogreen_core::{Compressor, RecyclingMiner, Strategy};
use gogreen_data::CountSink;
use gogreen_datagen::{DatasetPreset, PresetKind};
use gogreen_miners::{mine_hmine, FpGrowth, Miner};

fn main() {
    let mut group = BenchGroup::new("fpgrowth");
    group.sample_size(15);
    for kind in [PresetKind::Connect4, PresetKind::Pumsb] {
        let preset = DatasetPreset::new(kind, 0.01);
        let db = preset.generate();
        let fp = mine_hmine(&db, preset.xi_old());
        let xi_new = preset.sweep()[2];
        for (label, strategy) in [("FP-MCP", Strategy::Mcp), ("FP-MLP", Strategy::Mlp)] {
            let cdb = Compressor::new(strategy).compress(&db, &fp);
            group.bench(label, preset.name(), || {
                let mut sink = CountSink::new();
                RecycleFp::default().mine_into(&cdb, xi_new, &mut sink);
                sink.count()
            });
        }
        group.bench("FP-tree", preset.name(), || {
            let mut sink = CountSink::new();
            FpGrowth.mine_into(&db, xi_new, &mut sink);
            sink.count()
        });
    }
}
