//! Microbenchmarks for the mining phase: every algorithm family, fresh
//! on the raw database and recycled on the MCP-compressed one, with the
//! first-level projection fan-out at 1/2/4/8 threads (the `param`
//! column's `tN` suffix).
//!
//! Results are archived to `BENCH_mining.json` at the repository root
//! (one JSON array of the rows printed below). On a single-core host
//! the threaded rows measure the fan-out's buffering overhead, not a
//! speedup — see EXPERIMENTS.md E6.

use gogreen_bench::algo::AlgoFamily;
use gogreen_bench::{batchwork, BenchGroup};
use gogreen_core::{Compressor, Strategy};
use gogreen_datagen::{DatasetPreset, PresetKind};
use gogreen_miners::mine_hmine;
use gogreen_util::pool::Parallelism;
use gogreen_util::ToJson;

fn main() {
    // Rows carry per-run mining counters next to the timings (see
    // BenchResult::counters) — work done, not just time spent.
    gogreen_obs::metrics::set_enabled(true);
    let mut group = BenchGroup::new("mining");
    group.sample_size(5);
    for kind in [PresetKind::Connect4, PresetKind::Weather, PresetKind::Pumsb] {
        let preset = DatasetPreset::new(kind, 0.01);
        let db = preset.generate();
        let fp = mine_hmine(&db, preset.xi_old());
        let cdb = Compressor::new(Strategy::Mcp).compress(&db, &fp);
        let xi_new = *preset.sweep().last().expect("non-empty sweep");
        // A k=8 Zipf-skewed multi-query fleet over the preset's sweep:
        // one shared pass at the sweep floor answers all eight.
        let ladder = batchwork::zipf_ladder(&preset.sweep(), 8);
        for threads in [1usize, 2, 4, 8] {
            let par = Parallelism::threads(threads);
            let param = format!("{}/t{}", preset.name(), threads);
            for family in AlgoFamily::with_vertical() {
                group.bench(family.baseline_name(), &param, || {
                    family.run_baseline_par(&db, xi_new, par).patterns
                });
                group.bench(&format!("{}-MCP", family.tag()), &param, || {
                    family.run_recycled_par(&cdb, xi_new, par).patterns
                });
                group.bench(&format!("{}-Batch8", family.tag()), &param, || {
                    batchwork::run_batched(&db, family, &ladder, par)
                });
            }
        }
    }

    let rows: Vec<String> =
        group.finish().iter().map(|r| format!("  {}", r.to_json().dump())).collect();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_mining.json");
    std::fs::write(path, format!("[\n{}\n]\n", rows.join(",\n"))).expect("write BENCH_mining.json");
    println!("wrote {path}");
}
