//! Microbenchmarks for memory-limited mining (Figures 21–24 in
//! miniature): H-Mine vs HM-MCP under a budget tight enough to force
//! disk spills for the uncompressed structure.

use gogreen_bench::BenchGroup;
use gogreen_core::{Compressor, Strategy};
use gogreen_data::CountSink;
use gogreen_datagen::{DatasetPreset, PresetKind};
use gogreen_miners::mine_hmine;
use gogreen_storage::{LimitedHMine, LimitedRecycleHm, MemoryBudget};

fn main() {
    let mut group = BenchGroup::new("memory_limited");
    group.sample_size(10);
    let preset = DatasetPreset::new(PresetKind::Connect4, 0.01);
    let db = preset.generate();
    let fp = mine_hmine(&db, preset.xi_old());
    let cdb = Compressor::new(Strategy::Mcp).compress(&db, &fp);
    let xi_new = preset.sweep()[2];
    for budget_kib in [64usize, 512] {
        let budget = MemoryBudget::bytes(budget_kib * 1024);
        let param = format!("{budget_kib}KiB");
        group.bench("H-Mine", &param, || {
            let mut sink = CountSink::new();
            LimitedHMine::new(budget).mine_into(&db, xi_new, &mut sink).unwrap();
            sink.count()
        });
        group.bench("HM-MCP", &param, || {
            let mut sink = CountSink::new();
            LimitedRecycleHm::new(budget).mine_into(&cdb, xi_new, &mut sink).unwrap();
            sink.count()
        });
    }
}
