//! Criterion microbenchmarks for the Tree Projection pair (Figures
//! 11/14/17/20 in miniature).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gogreen_core::recycle_tp::RecycleTp;
use gogreen_core::{Compressor, RecyclingMiner, Strategy};
use gogreen_data::CountSink;
use gogreen_datagen::{DatasetPreset, PresetKind};
use gogreen_miners::{mine_hmine, Miner, TreeProjection};

fn bench_tp(c: &mut Criterion) {
    let mut group = c.benchmark_group("treeproj");
    group.sample_size(15);
    for kind in [PresetKind::Connect4, PresetKind::Forest] {
        let preset = DatasetPreset::new(kind, 0.01);
        let db = preset.generate();
        let fp = mine_hmine(&db, preset.xi_old());
        let xi_new = preset.sweep()[2];
        for (label, strategy) in [("TP-MCP", Strategy::Mcp), ("TP-MLP", Strategy::Mlp)] {
            let cdb = Compressor::new(strategy).compress(&db, &fp);
            group.bench_with_input(BenchmarkId::new(label, preset.name()), &cdb, |b, cdb| {
                b.iter(|| {
                    let mut sink = CountSink::new();
                    RecycleTp.mine_into(cdb, xi_new, &mut sink);
                    sink.count()
                });
            });
        }
        group.bench_with_input(
            BenchmarkId::new("TreeProjection", preset.name()),
            &db,
            |b, db| {
                b.iter(|| {
                    let mut sink = CountSink::new();
                    TreeProjection.mine_into(db, xi_new, &mut sink);
                    sink.count()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_tp);
criterion_main!(benches);
