//! Microbenchmarks for the Tree Projection pair (Figures 11/14/17/20 in
//! miniature).

use gogreen_bench::BenchGroup;
use gogreen_core::recycle_tp::RecycleTp;
use gogreen_core::{Compressor, RecyclingMiner, Strategy};
use gogreen_data::CountSink;
use gogreen_datagen::{DatasetPreset, PresetKind};
use gogreen_miners::{mine_hmine, Miner, TreeProjection};

fn main() {
    let mut group = BenchGroup::new("treeproj");
    group.sample_size(15);
    for kind in [PresetKind::Connect4, PresetKind::Forest] {
        let preset = DatasetPreset::new(kind, 0.01);
        let db = preset.generate();
        let fp = mine_hmine(&db, preset.xi_old());
        let xi_new = preset.sweep()[2];
        for (label, strategy) in [("TP-MCP", Strategy::Mcp), ("TP-MLP", Strategy::Mlp)] {
            let cdb = Compressor::new(strategy).compress(&db, &fp);
            group.bench(label, preset.name(), || {
                let mut sink = CountSink::new();
                RecycleTp.mine_into(&cdb, xi_new, &mut sink);
                sink.count()
            });
        }
        group.bench("TreeProjection", preset.name(), || {
            let mut sink = CountSink::new();
            TreeProjection.mine_into(&db, xi_new, &mut sink);
            sink.count()
        });
    }
}
