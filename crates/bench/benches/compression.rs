//! Microbenchmarks for the compression phase (Table 3's time columns):
//! pattern-utility ordering plus tuple coverage, per strategy and
//! dataset regime, and the indexed cover kernel against the seed's
//! linear scan across a growing recycled-pattern set (|FP| sweep via
//! lowered ξ_old).
//!
//! Results are archived to `BENCH_compression.json` at the repository
//! root (one JSON array of the rows printed below).

use gogreen_bench::BenchGroup;
use gogreen_core::{Compressor, Strategy};
use gogreen_data::MinSupport;
use gogreen_datagen::{DatasetPreset, PresetKind};
use gogreen_miners::mine_hmine;
use gogreen_util::ToJson;

fn main() {
    // Rows carry per-run mining counters next to the timings (see
    // BenchResult::counters) — work done, not just time spent.
    gogreen_obs::metrics::set_enabled(true);
    let mut group = BenchGroup::new("compression");
    group.sample_size(20);
    for kind in [PresetKind::Connect4, PresetKind::Weather] {
        let preset = DatasetPreset::new(kind, 0.01);
        let db = preset.generate();
        let fp = mine_hmine(&db, preset.xi_old());
        for strategy in [Strategy::Mcp, Strategy::Mlp] {
            group.bench(strategy.suffix(), preset.name(), || {
                Compressor::new(strategy).compress(&db, &fp)
            });
        }
    }

    // Kernel comparison: the shipped CoverIndex sweep ("indexed") vs the
    // seed's full-FP linear scan ("linear"), at growing |FP| (ξ_old
    // lowered below the preset's). Dense and sparse regimes degrade the
    // scan differently — see EXPERIMENTS.md E4.
    group.sample_size(10);
    let sweeps =
        [(PresetKind::Connect4, [0.95, 0.85, 0.75]), (PresetKind::Weather, [0.05, 0.02, 0.01])];
    for (kind, supports) in sweeps {
        let preset = DatasetPreset::new(kind, 0.01);
        let db = preset.generate();
        for rel in supports {
            let fp = mine_hmine(&db, MinSupport::Relative(rel));
            let compressor = Compressor::new(Strategy::Mcp);
            let param = format!("{}/fp{}", preset.name(), fp.len());
            group.bench("linear", &param, || compressor.compress_reference(&db, &fp));
            group.bench("indexed", &param, || compressor.compress(&db, &fp));
        }
    }

    let rows: Vec<String> =
        group.finish().iter().map(|r| format!("  {}", r.to_json().dump())).collect();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_compression.json");
    std::fs::write(path, format!("[\n{}\n]\n", rows.join(",\n")))
        .expect("write BENCH_compression.json");
    println!("wrote {path}");
}
