//! Criterion microbenchmarks for the compression phase (Table 3's time
//! columns): pattern-utility ordering plus tuple coverage, per strategy
//! and dataset regime.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gogreen_core::{Compressor, Strategy};
use gogreen_datagen::{DatasetPreset, PresetKind};
use gogreen_miners::mine_hmine;

fn bench_compression(c: &mut Criterion) {
    let mut group = c.benchmark_group("compression");
    group.sample_size(20);
    for kind in [PresetKind::Connect4, PresetKind::Weather] {
        let preset = DatasetPreset::new(kind, 0.01);
        let db = preset.generate();
        let fp = mine_hmine(&db, preset.xi_old());
        for strategy in [Strategy::Mcp, Strategy::Mlp] {
            group.bench_with_input(
                BenchmarkId::new(strategy.suffix(), preset.name()),
                &(&db, &fp),
                |b, (db, fp)| {
                    b.iter(|| Compressor::new(strategy).compress(db, fp));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_compression);
criterion_main!(benches);
