//! Hierarchical wall-time spans, emitted as JSON lines.
//!
//! A [`Span`] is entered with [`span`] and exited on drop, writing one
//! line to the installed trace writer:
//!
//! ```json
//! {"type":"span","id":3,"parent":1,"name":"cover.sweep",
//!  "start_us":120,"dur_us":4512,"fields":{"tuples":6758}}
//! ```
//!
//! Parent links come from a per-thread span stack, so nesting on one
//! thread is captured without any caller bookkeeping. `start_us` is
//! microseconds since the first span/event of the process, making a
//! trace self-contained and diffable.
//!
//! With no writer installed and profiling off (the default), [`span`]
//! reads no clock, allocates nothing, and the guard's drop is a branch.
//! When [`crate::profile`] is enabled, each span additionally folds its
//! duration into the in-process profile tree — with or without a trace
//! writer.

use crate::profile;
use gogreen_util::{Json, Stopwatch};
use std::cell::RefCell;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static TRACING: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Option<Box<dyn Write + Send>>> = Mutex::new(None);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// The process trace epoch: set by the first span or event.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

thread_local! {
    /// Ids of the spans currently open on this thread, outermost first.
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Installs the JSONL trace writer and enables span emission.
pub fn set_trace_writer(w: Box<dyn Write + Send>) {
    *SINK.lock().unwrap_or_else(|e| e.into_inner()) = Some(w);
    TRACING.store(true, Ordering::Relaxed);
}

/// Disables tracing and returns the writer (dropping it flushes file
/// sinks).
pub fn take_trace_writer() -> Option<Box<dyn Write + Send>> {
    TRACING.store(false, Ordering::Relaxed);
    SINK.lock().unwrap_or_else(|e| e.into_inner()).take()
}

/// True while a trace writer is installed.
#[inline]
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

fn write_line(json: &Json) {
    let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(w) = sink.as_mut() {
        let _ = writeln!(w, "{json}");
    }
}

/// An open span; exits (and emits its line) on drop.
///
/// ```
/// let mut sp = gogreen_obs::span("compress");
/// sp.field("patterns", 42u64);
/// // ... the timed phase ...
/// drop(sp); // emits {"type":"span","name":"compress",...}
/// ```
#[derive(Debug)]
pub struct Span {
    /// 0 = inactive for tracing (off at enter, or profile-only span).
    id: u64,
    name: &'static str,
    parent: Option<u64>,
    start_us: u64,
    /// True when enter pushed a [`crate::profile`] frame that drop must
    /// pop.
    profiled: bool,
    watch: Stopwatch,
    fields: Vec<(&'static str, Json)>,
}

/// Enters a span named `name`. While tracing and profiling are both off
/// this is free and the returned guard does nothing.
pub fn span(name: &'static str) -> Span {
    let tracing = tracing_enabled();
    let profiled = profile::enabled() && profile::on_enter(name);
    if !tracing && !profiled {
        return Span {
            id: 0,
            name,
            parent: None,
            start_us: 0,
            profiled: false,
            watch: Stopwatch::new(),
            fields: Vec::new(),
        };
    }
    let (id, start_us, parent) = if tracing {
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let start_us = epoch().elapsed().as_micros() as u64;
        let parent = STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s.last().copied();
            s.push(id);
            parent
        });
        (id, start_us, parent)
    } else {
        (0, 0, None)
    };
    Span { id, name, parent, start_us, profiled, watch: Stopwatch::started(), fields: Vec::new() }
}

impl Span {
    /// Attaches a `key=value` field, reported at exit.
    pub fn field(&mut self, key: &'static str, value: impl Into<Json>) -> &mut Self {
        if self.id != 0 {
            self.fields.push((key, value.into()));
        }
        self
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.id == 0 && !self.profiled {
            return;
        }
        // `lap` reads the split since enter; a span is one lap long.
        let dur_us = self.watch.lap().as_micros() as u64;
        if self.profiled {
            profile::on_exit(dur_us);
        }
        if self.id == 0 {
            return;
        }
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            if s.last() == Some(&self.id) {
                s.pop();
            } else {
                // Out-of-order drop (spans moved across an await-like
                // boundary): remove wherever it is.
                s.retain(|&x| x != self.id);
            }
        });
        let parent = match self.parent {
            Some(p) => Json::from(p),
            None => Json::Null,
        };
        let json = Json::obj([
            ("type", Json::from("span")),
            ("id", Json::from(self.id)),
            ("parent", parent),
            ("name", Json::from(self.name)),
            ("start_us", Json::from(self.start_us)),
            ("dur_us", Json::from(dur_us)),
            ("fields", Json::Obj(self.fields.drain(..).map(|(k, v)| (k.to_string(), v)).collect())),
        ]);
        write_line(&json);
    }
}

/// Emits a point-in-time event line (`{"type":"event",...}`) into the
/// trace stream. No-op while tracing is off.
pub fn event(name: &'static str, fields: impl IntoIterator<Item = (&'static str, Json)>) {
    if !tracing_enabled() {
        return;
    }
    let at_us = epoch().elapsed().as_micros() as u64;
    let parent = STACK.with(|s| s.borrow().last().copied());
    let json = Json::obj([
        ("type", Json::from("event")),
        ("name", Json::from(name)),
        ("at_us", Json::from(at_us)),
        ("parent", parent.map_or(Json::Null, Json::from)),
        ("fields", Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())),
    ]);
    write_line(&json);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// A writer into a shared buffer, for asserting on emitted lines.
    struct Buf(Arc<StdMutex<Vec<u8>>>);
    impl Write for Buf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    /// Tracing state is process-global; serialize the tests touching it.
    static TEST_LOCK: StdMutex<()> = StdMutex::new(());

    #[test]
    fn disabled_spans_emit_nothing() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _ = take_trace_writer();
        let mut sp = span("quiet");
        sp.field("x", 1u64);
        drop(sp);
        event("nothing", []);
        // No writer: nothing to assert beyond "did not panic/allocate a
        // sink"; the buffer-based test below covers the enabled path.
    }

    #[test]
    fn nested_spans_carry_parent_links_and_fields() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let buf = Arc::new(StdMutex::new(Vec::new()));
        set_trace_writer(Box::new(Buf(buf.clone())));
        {
            let mut outer = span("outer");
            outer.field("k", 7u64);
            {
                let _inner = span("inner");
                event("tick", [("n", Json::from(1u64))]);
            }
        }
        drop(take_trace_writer());
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "{text}");
        // Emission order: event, inner exit, outer exit.
        let event_line = Json::parse(lines[0]).unwrap();
        let inner = Json::parse(lines[1]).unwrap();
        let outer = Json::parse(lines[2]).unwrap();
        assert_eq!(event_line.get("type").and_then(Json::as_str), Some("event"));
        assert_eq!(inner.get("name").and_then(Json::as_str), Some("inner"));
        assert_eq!(outer.get("name").and_then(Json::as_str), Some("outer"));
        // inner's parent is outer's id; the event nests under inner.
        assert_eq!(inner.get("parent"), outer.get("id"));
        assert_eq!(event_line.get("parent"), inner.get("id"));
        assert_eq!(outer.get("parent"), Some(&Json::Null));
        let fields = outer.get("fields").unwrap();
        assert_eq!(fields.get("k").and_then(Json::as_u64), Some(7));
    }
}
