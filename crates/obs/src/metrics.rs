//! The metrics registry: named counters and max-gauges.
//!
//! # Naming scheme
//!
//! Dotted lowercase names, `<subsystem>.<quantity>`:
//!
//! * `compress.*` / `mine.*` / `session.*` / `storage.*` — **logical
//!   work**: quantities determined by the input and the algorithm, not by
//!   the machine. These are bit-identical at any thread count (updates
//!   are additive or max-merged, both order-independent).
//! * `alloc.*` — projection-arena accounting (`alloc.projection_bytes`,
//!   `alloc.arena_reuses`). Also logical work: each arena generation
//!   records its *used* bytes (never capacity), so the totals equal a
//!   sum over projections regardless of how projections were spread
//!   across workers.
//! * `cover.*` — **machine work** inside the cover kernel (bitmap words
//!   scanned, AND-chains run). Chunked parallel sweeps legitimately do a
//!   different amount of machine work than one serial sweep, so these
//!   may vary with `--threads`; [`is_thread_invariant`] tells the two
//!   classes apart.
//!
//! # Sharding
//!
//! Updates land in a per-thread shard (a plain hash map — no atomics, no
//! locks on the hot path) and merge into the global registry when the
//! thread exits; [`snapshot`] additionally merges the calling thread's
//! shard so the main thread always sees its own writes. The worker
//! threads of `gogreen_util::pool` are scoped and terminate before the
//! fork-join call returns, so their shards are merged by the time the
//! caller can observe anything.
//!
//! # Overhead
//!
//! Disabled (the default), an update is one relaxed atomic load and a
//! branch — the budget is < 2% on a compression run even at 10⁴ calls,
//! enforced by `tests/obs_metrics.rs`.

use gogreen_util::{FxHashMap, Json};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// What a metric measures and how shards merge into it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// A monotone count; shards merge by addition.
    Counter,
    /// A high-water mark; shards merge by maximum.
    Max,
}

/// One merged metric value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Metric {
    /// Merge behaviour.
    pub kind: Kind,
    /// Current merged value.
    pub value: u64,
}

impl Metric {
    fn merge(&mut self, other: Metric) {
        debug_assert_eq!(self.kind, other.kind, "metric kind mismatch");
        match self.kind {
            Kind::Counter => self.value += other.value,
            Kind::Max => self.value = self.value.max(other.value),
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: Mutex<BTreeMap<&'static str, Metric>> = Mutex::new(BTreeMap::new());

/// The per-thread shard. Dropping it (thread exit) merges into the
/// global registry.
struct Shard {
    map: FxHashMap<&'static str, Metric>,
}

impl Drop for Shard {
    fn drop(&mut self) {
        merge_into_global(&mut self.map);
    }
}

thread_local! {
    static SHARD: RefCell<Shard> = RefCell::new(Shard { map: FxHashMap::default() });
}

fn merge_into_global(map: &mut FxHashMap<&'static str, Metric>) {
    if map.is_empty() {
        return;
    }
    let mut global = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    for (name, m) in map.drain() {
        global.entry(name).and_modify(|g| g.merge(m)).or_insert(m);
    }
}

fn record(name: &'static str, kind: Kind, value: u64) {
    let m = Metric { kind, value };
    // Shard access can fail only during thread teardown (the TLS value
    // already dropped); those late stragglers merge directly.
    let direct = SHARD
        .try_with(|s| {
            s.borrow_mut().map.entry(name).and_modify(|g| g.merge(m)).or_insert(m);
        })
        .is_err();
    if direct {
        let mut one = FxHashMap::default();
        one.insert(name, m);
        merge_into_global(&mut one);
    }
}

/// Turns metric recording on or off. Off (the default) makes every
/// update a load-and-branch no-op.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// True while updates are being recorded.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Adds `delta` to the counter `name`. No-op while disabled.
#[inline]
pub fn add(name: &'static str, delta: u64) {
    if !enabled() || delta == 0 {
        return;
    }
    record(name, Kind::Counter, delta);
}

/// Raises the max-gauge `name` to at least `value`. No-op while disabled.
#[inline]
pub fn set_max(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    record(name, Kind::Max, value);
}

/// Merges the calling thread's shard and returns every metric, sorted by
/// name.
pub fn snapshot() -> Vec<(&'static str, Metric)> {
    let _ = SHARD.try_with(|s| merge_into_global(&mut s.borrow_mut().map));
    let global = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    global.iter().map(|(&k, &v)| (k, v)).collect()
}

/// The current value of one metric, if it has been touched.
pub fn get(name: &str) -> Option<u64> {
    snapshot().iter().find(|(n, _)| *n == name).map(|(_, m)| m.value)
}

/// Clears the registry and the calling thread's shard. (Shards of other
/// still-live threads are untouched; the workspace's worker threads are
/// scoped and gone by the time anyone resets.)
pub fn reset() {
    let _ = SHARD.try_with(|s| s.borrow_mut().map.clear());
    GLOBAL.lock().unwrap_or_else(|e| e.into_inner()).clear();
}

/// True when `name` measures logical work (thread-invariant totals), as
/// opposed to machine work inside the chunked cover kernel. The
/// `alloc.*` arena counters are in the invariant class: they record
/// used bytes per projection, so worker count cannot move them.
///
/// Declared names answer from [`crate::registry`]; names outside the
/// registry (test-only counters, ad-hoc experiments) fall back to the
/// historical prefix rule.
pub fn is_thread_invariant(name: &str) -> bool {
    match crate::registry::lookup(name) {
        Some(def) => def.invariant,
        None => !name.starts_with("cover."),
    }
}

/// Renders the registry as an aligned, `gogreen stats`-style table.
pub fn render_table() -> String {
    let snap = snapshot();
    if snap.is_empty() {
        return "  (no metrics recorded)".to_string();
    }
    let width = snap.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (name, m) in snap {
        let tag = match m.kind {
            Kind::Counter => "",
            Kind::Max => " (max)",
        };
        out.push_str(&format!("  {name:<width$}  {}{tag}\n", m.value));
    }
    out.pop();
    out
}

/// Renders the registry as JSON lines, one metric per line:
/// `{"metric":"mine.candidate_tests","kind":"counter","value":123}`.
pub fn to_jsonl() -> String {
    let mut out = String::new();
    for (name, m) in snapshot() {
        let kind = match m.kind {
            Kind::Counter => "counter",
            Kind::Max => "max",
        };
        let line = Json::obj([
            ("metric", Json::from(name)),
            ("kind", Json::from(kind)),
            ("value", Json::from(m.value)),
        ]);
        out.push_str(&line.dump());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global, so tests in this module serialize
    /// themselves on one lock to avoid cross-talk.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_updates_record_nothing() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_enabled(false);
        add("test.counter", 5);
        set_max("test.gauge", 9);
        assert_eq!(get("test.counter"), None);
        assert_eq!(get("test.gauge"), None);
    }

    #[test]
    fn counters_add_and_gauges_max() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_enabled(true);
        add("test.c", 2);
        add("test.c", 3);
        set_max("test.m", 7);
        set_max("test.m", 4);
        assert_eq!(get("test.c"), Some(5));
        assert_eq!(get("test.m"), Some(7));
        set_enabled(false);
        reset();
    }

    #[test]
    fn scoped_threads_merge_on_exit_and_totals_are_order_free() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_enabled(true);
        std::thread::scope(|scope| {
            for t in 0..4 {
                scope.spawn(move || {
                    for _ in 0..100 {
                        add("test.sharded", 1);
                    }
                    set_max("test.depth", 10 + t);
                });
            }
        });
        assert_eq!(get("test.sharded"), Some(400));
        assert_eq!(get("test.depth"), Some(13));
        set_enabled(false);
        reset();
    }

    #[test]
    fn jsonl_and_table_render() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_enabled(true);
        add("test.a", 1);
        set_max("test.b", 2);
        let jsonl = to_jsonl();
        assert!(jsonl.contains(r#"{"metric":"test.a","kind":"counter","value":1}"#));
        assert!(jsonl.contains(r#"{"metric":"test.b","kind":"max","value":2}"#));
        let table = render_table();
        assert!(table.contains("test.a"));
        assert!(table.contains("(max)"));
        set_enabled(false);
        reset();
    }

    #[test]
    fn thread_invariance_classification() {
        assert!(is_thread_invariant("mine.candidate_tests"));
        assert!(is_thread_invariant("compress.tuples_covered"));
        assert!(is_thread_invariant("alloc.projection_bytes"));
        assert!(is_thread_invariant("alloc.arena_reuses"));
        assert!(!is_thread_invariant("cover.words_scanned"));
    }
}
