#![warn(missing_docs)]

//! Observability for the `gogreen` workspace: tracing spans and mining
//! counters that explain *why* recycling wins.
//!
//! The paper's headline claim — MCP beats MLP even though MLP compresses
//! better — is a claim about *search-space work saved*: candidate tests
//! skipped, projected databases built group-at-a-time instead of
//! tuple-at-a-time. Wall clock alone cannot show that. This crate
//! provides the two missing instruments:
//!
//! * [`metrics`] — a process-wide registry of named counters and
//!   max-gauges. Updates go to a per-thread shard (no cross-thread
//!   contention on hot paths) and merge into the global registry when the
//!   thread exits or a snapshot is taken. Counter merges are additions
//!   and gauge merges are `max` — both commutative and associative — so
//!   totals are **bit-identical at any `--threads` setting** for counters
//!   that measure logical work. When disabled (the default), every
//!   update is a single relaxed atomic load and a branch.
//! * [`span`] — hierarchical wall-time spans (enter/exit, phase name,
//!   `key=value` fields, parent links) emitted as JSON lines to a
//!   configurable writer. When no writer is installed, entering a span
//!   reads no clock and allocates nothing.
//!
//! On top of those two primitives sit the profiling layers added for
//! the perf-gate work:
//!
//! * [`histogram`] — deterministic log₂-bucketed distributions, sharded
//!   and merged exactly like the counters, sharing their master switch.
//! * [`profile`] — the span stream folded in-process into a
//!   self-time/total-time/call-count tree, exported as a table or
//!   collapsed-stack format for flamegraph tooling.
//! * [`snapshot`] — point-in-time captures of all metric state,
//!   delta-able and deliverable through a periodic exporter hook (the
//!   interface a long-running server polls).
//! * [`registry`] — the central declaration of every observable name
//!   with its thread-invariance class, linted against the source tree.
//!
//! All layers are *off* by default so that library users and the test
//! suite pay (nearly) nothing; the CLI's `--trace-out` / `--metrics-out`
//! / `--profile-out` / `--snapshot-out` flags switch them on per
//! process.
//!
//! The crate depends only on `gogreen-util` (for [`gogreen_util::Json`]
//! and the hasher), so every other workspace crate can depend on it
//! without cycles.

pub mod histogram;
pub mod metrics;
pub mod profile;
pub mod registry;
pub mod snapshot;
pub mod span;

pub use snapshot::MetricsSnapshot;
pub use span::{event, set_trace_writer, span, take_trace_writer, tracing_enabled, Span};

use std::sync::atomic::{AtomicBool, Ordering};

static QUIET: AtomicBool = AtomicBool::new(false);

/// Suppresses progress/summary output routed through [`progress`]
/// (the CLI's `--quiet-metrics`). Errors still print.
pub fn set_quiet(quiet: bool) {
    QUIET.store(quiet, Ordering::Relaxed);
}

/// True when [`set_quiet`] suppressed progress output.
pub fn quiet() -> bool {
    QUIET.load(Ordering::Relaxed)
}

/// A progress line: stderr unless quieted, plus a trace event when a
/// trace writer is installed. Replaces ad-hoc `eprintln!` progress so
/// one flag silences everything uniformly.
pub fn progress(msg: &str) {
    if !quiet() {
        eprintln!("{msg}");
    }
    event("progress", [("msg", gogreen_util::Json::from(msg))]);
}

/// An error line: always printed to stderr (quiet does not apply), and
/// mirrored into the trace stream when one is active.
pub fn error(msg: &str) {
    eprintln!("{msg}");
    event("error", [("msg", gogreen_util::Json::from(msg))]);
}
