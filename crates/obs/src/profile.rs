//! In-process self-time profiles aggregated from the span stream.
//!
//! Raw span JSONL (see [`crate::span`]) is complete but post-hoc: you
//! need a second tool to learn *where time went*. When profiling is
//! enabled, every span additionally folds into a process-global profile
//! tree keyed by its **stack path** — the `;`-joined names of the spans
//! open on its thread, innermost last (`mine;compress;cover`). Each node
//! accumulates call count, **total time** (wall time of the span) and
//! **self time** (total minus time spent in child spans).
//!
//! Self times telescope: a span's total is its self time plus its
//! children's totals, so summing self time over every node of a subtree
//! reproduces the root's total exactly (in integer microseconds — the
//! only slack is the clock reads between a child's measurement and the
//! parent's, which the acceptance tests bound by span-clock resolution).
//! That identity is what makes the collapsed-stack export
//! ([`to_collapsed`]) directly feedable to standard flamegraph tooling:
//! `path self_us` per line, weights summing to the run's root total.
//!
//! Profiling is independent of tracing — either, both, or neither may be
//! on. Spans are coarse (one per phase, not per projection), so the
//! global mutex on exit is off the hot path.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

static PROFILING: AtomicBool = AtomicBool::new(false);
static GLOBAL: Mutex<BTreeMap<String, ProfNode>> = Mutex::new(BTreeMap::new());

/// Aggregated timings of one stack path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProfNode {
    /// Spans recorded at this path.
    pub calls: u64,
    /// Σ wall time of those spans, microseconds.
    pub total_us: u64,
    /// Σ (wall time − child-span time), microseconds.
    pub self_us: u64,
}

/// One open frame on this thread's profile stack.
struct Frame {
    /// `;`-joined span names from the thread's outermost span.
    path: String,
    /// Σ total time of already-closed direct children, microseconds.
    child_us: u64,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// Turns profile aggregation on or off. Off (the default), span
/// enter/exit skip the profile layer entirely.
pub fn set_enabled(on: bool) {
    PROFILING.store(on, Ordering::Relaxed);
}

/// True while spans fold into the profile tree.
#[inline]
pub fn enabled() -> bool {
    PROFILING.load(Ordering::Relaxed)
}

/// Pushes a frame for a span named `name`; called by [`crate::span`] on
/// enter when profiling is on. Returns false only during thread
/// teardown (TLS gone), in which case the span skips profile exit too.
pub(crate) fn on_enter(name: &'static str) -> bool {
    STACK
        .try_with(|s| {
            let mut s = s.borrow_mut();
            let path = match s.last() {
                Some(top) => {
                    let mut p = String::with_capacity(top.path.len() + 1 + name.len());
                    p.push_str(&top.path);
                    p.push(';');
                    p.push_str(name);
                    p
                }
                None => name.to_string(),
            };
            s.push(Frame { path, child_us: 0 });
        })
        .is_ok()
}

/// Pops the current frame and records `dur_us` against its path; called
/// by [`crate::span`] on drop when the span pushed a frame.
pub(crate) fn on_exit(dur_us: u64) {
    let _ = STACK.try_with(|s| {
        let mut s = s.borrow_mut();
        let Some(frame) = s.pop() else { return };
        let self_us = dur_us.saturating_sub(frame.child_us);
        if let Some(parent) = s.last_mut() {
            parent.child_us += dur_us;
        }
        let mut global = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        let node = global.entry(frame.path).or_default();
        node.calls += 1;
        node.total_us += dur_us;
        node.self_us += self_us;
    });
}

/// Every profile node, sorted by stack path.
pub fn snapshot() -> Vec<(String, ProfNode)> {
    let global = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    global.iter().map(|(k, v)| (k.clone(), *v)).collect()
}

/// The node at one exact stack path (`"mine;compress"`), if recorded.
pub fn get(path: &str) -> Option<ProfNode> {
    GLOBAL.lock().unwrap_or_else(|e| e.into_inner()).get(path).copied()
}

/// Clears the profile tree. Open frames on the calling thread are kept
/// (their spans have not exited yet).
pub fn reset() {
    GLOBAL.lock().unwrap_or_else(|e| e.into_inner()).clear();
}

/// Σ self time over a root name's whole subtree, microseconds. By the
/// telescoping identity this equals the root path's `total_us`.
pub fn subtree_self_us(root: &str) -> u64 {
    snapshot()
        .iter()
        .filter(|(p, _)| p == root || p.starts_with(root) && p[root.len()..].starts_with(';'))
        .map(|(_, n)| n.self_us)
        .sum()
}

/// Renders the profile as an indented tree table: calls, total and self
/// milliseconds per path, children indented under parents (paths sort
/// lexicographically, so a parent immediately precedes its subtree).
pub fn render_table() -> String {
    let snap = snapshot();
    if snap.is_empty() {
        return "  (no profile recorded)".to_string();
    }
    let mut out = String::new();
    out.push_str("  calls     total_ms      self_ms  phase\n");
    for (path, node) in &snap {
        let depth = path.matches(';').count();
        let leaf = path.rsplit(';').next().unwrap_or(path);
        out.push_str(&format!(
            "  {:>5}  {:>11.3}  {:>11.3}  {:indent$}{leaf}\n",
            node.calls,
            node.total_us as f64 / 1e3,
            node.self_us as f64 / 1e3,
            "",
            indent = depth * 2,
        ));
    }
    out.pop();
    out
}

/// Renders the profile in collapsed-stack format — one `path self_us`
/// line per node, `;`-separated frames — the input format of standard
/// flamegraph tooling. Nodes whose self time rounded to zero are kept:
/// dropping them would hide call counts, and zero weights are harmless.
pub fn to_collapsed() -> String {
    let mut out = String::new();
    for (path, node) in snapshot() {
        out.push_str(&path);
        out.push(' ');
        out.push_str(&node.self_us.to_string());
        out.push('\n');
    }
    out
}

/// Folds an explicit observation into the tree without a live span —
/// used by tests and by replays of recorded span streams. `path` is the
/// full `;`-joined stack path.
pub fn record_raw(path: &str, calls: u64, total_us: u64, self_us: u64) {
    let mut global = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    let node = global.entry(path.to_string()).or_default();
    node.calls += calls;
    node.total_us += total_us;
    node.self_us += self_us;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span;

    /// Profile state is process-global; serialize the tests touching it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_spans_record_no_profile() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(false);
        reset();
        {
            let _sp = span("prof_off");
        }
        assert!(get("prof_off").is_none());
    }

    #[test]
    fn nesting_builds_paths_and_self_times_telescope() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_enabled(true);
        {
            let _outer = span("outer_p");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = span("inner_p");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        set_enabled(false);
        let outer = get("outer_p").expect("outer recorded");
        let inner = get("outer_p;inner_p").expect("inner recorded");
        assert_eq!(outer.calls, 1);
        assert_eq!(inner.calls, 1);
        assert_eq!(inner.total_us, inner.self_us, "leaf: all time is self time");
        assert_eq!(
            outer.self_us + inner.self_us,
            outer.total_us,
            "self times telescope to the root total"
        );
        assert_eq!(subtree_self_us("outer_p"), outer.total_us);
        reset();
    }

    #[test]
    fn repeated_calls_accumulate() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_enabled(true);
        for _ in 0..3 {
            let _sp = span("thrice");
        }
        set_enabled(false);
        assert_eq!(get("thrice").expect("recorded").calls, 3);
        reset();
    }

    #[test]
    fn collapsed_and_table_render() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        record_raw("a", 1, 10, 4);
        record_raw("a;b", 2, 6, 6);
        let collapsed = to_collapsed();
        assert_eq!(collapsed, "a 4\na;b 6\n");
        let table = render_table();
        assert!(table.contains("a\n"), "{table}");
        assert!(table.contains("  b"), "child indented: {table}");
        assert_eq!(subtree_self_us("a"), 10);
        reset();
    }

    #[test]
    fn distinct_prefix_names_do_not_alias_subtrees() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        record_raw("mine", 1, 10, 10);
        record_raw("miner_extra", 1, 99, 99);
        assert_eq!(subtree_self_us("mine"), 10);
        reset();
    }
}
