//! The central metric-name registry: every observable name in the
//! workspace, declared exactly once.
//!
//! [`crate::metrics::is_thread_invariant`] used to free-float as a
//! prefix rule that could silently drift from the names the engines
//! actually emit. The registry makes the contract checkable: each entry
//! carries the name, what it is (counter, max-gauge, histogram, or
//! span), whether its merged value is **thread-invariant** (bit-identical
//! at any `--threads N` because it measures logical work), and a
//! one-line doc. `tests/metric_registry.rs` lints the source tree
//! against this table in both directions — an emitted name missing here,
//! or a declared name no longer emitted anywhere, fails the build.

/// What an observable name denotes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefKind {
    /// A monotone counter ([`crate::metrics::add`]).
    Counter,
    /// A high-water mark ([`crate::metrics::set_max`]).
    Max,
    /// A log₂-bucketed distribution ([`crate::histogram::observe`]).
    Hist,
    /// A trace/profile span name ([`crate::span`]).
    Span,
}

/// One declared observable name.
#[derive(Debug, Clone, Copy)]
pub struct MetricDef {
    /// The exact `&'static str` passed at the emit site.
    pub name: &'static str,
    /// Counter, max-gauge, histogram, or span.
    pub kind: DefKind,
    /// True when the merged value is bit-identical at any thread count.
    /// Spans carry wall time, which is never invariant; they are
    /// declared `false`.
    pub invariant: bool,
    /// One-line description.
    pub doc: &'static str,
}

macro_rules! defs {
    ($(($name:literal, $kind:ident, $inv:literal, $doc:literal)),* $(,)?) => {
        &[$(MetricDef {
            name: $name,
            kind: DefKind::$kind,
            invariant: $inv,
            doc: $doc,
        }),*]
    };
}

/// Every observable name in the workspace. Sorted by name; the lint
/// test enforces sortedness and uniqueness.
pub const ALL: &[MetricDef] = defs![
    (
        "alloc.arena_reuses",
        Counter,
        true,
        "projection-arena generations that reused an existing slab"
    ),
    (
        "alloc.projection_bytes",
        Counter,
        true,
        "bytes *used* (never capacity) across all projection-arena generations"
    ),
    ("batch", Span, false, "one batched multi-query run (plan + shared pass + demux)"),
    (
        "batch.demux_patterns",
        Counter,
        true,
        "patterns in a batch's shared stream processed by the demultiplexer"
    ),
    ("batch.fanout", Hist, true, "member queries accepting each shared-pass pattern at demux time"),
    ("batch.queries", Counter, true, "queries submitted across all batch runs"),
    (
        "batch.rejected",
        Counter,
        true,
        "queries the admission bound kept out of a shared pass (answered solo)"
    ),
    ("batch.shared_passes", Counter, true, "coalesced mining passes executed for batches"),
    ("compress", Span, false, "one compression pass (cover build + sweep + emit)"),
    (
        "compress.group_size",
        Hist,
        true,
        "tuples per emitted compressed group (the distribution behind compress.groups_emitted)"
    ),
    ("compress.groups_emitted", Counter, true, "groups written into the compressed database"),
    ("compress.runs", Counter, true, "compression passes executed"),
    ("compress.tuples_covered", Counter, true, "tuples claimed by some pattern's cover"),
    ("compress.tuples_total", Counter, true, "tuples presented to the compressor"),
    ("cover", Span, false, "the cover sweep inside a compression pass"),
    ("cover.build", Span, false, "building the vertical CoverIndex for a sweep"),
    (
        "cover.run_len",
        Hist,
        false,
        "tuples claimed per pattern per chunk in the cover sweep (machine work: chunking \
         re-partitions the claims across threads)"
    ),
    (
        "cover.words_scanned",
        Counter,
        false,
        "bitmap words read by AND-chains in the cover kernel (machine work: chunked sweeps \
         rescan boundaries)"
    ),
    ("mine", Span, false, "one mining run (any engine, raw or recycled)"),
    (
        "mine.bitmap_words_scanned",
        Counter,
        true,
        "tidset bitmap words read by the vertical engine's AND+popcount kernels"
    ),
    (
        "mine.bound_prunes",
        Counter,
        true,
        "extension levels terminated early by the Geerts-Goethals-Van den Bussche bound"
    ),
    ("mine.candidate_tests", Counter, true, "support tests performed against min-support"),
    (
        "mine.diffset_words",
        Counter,
        true,
        "u32 diffset entries produced or read by the vertical engine's dEclat kernels"
    ),
    ("mine.fp_nodes", Counter, true, "FP-tree nodes allocated by the legacy fpgrowth miner"),
    ("mine.group_hits", Counter, true, "compressed groups consulted during counting"),
    ("mine.max_depth", Max, true, "deepest projection recursion reached"),
    (
        "mine.node_density",
        Hist,
        true,
        "per-node tidset density (set bits per 1024 bitmap slots) observed at each vertical \
         materialization, the signal behind representation switching"
    ),
    (
        "mine.projected_db_size",
        Hist,
        true,
        "rows (tuples or groups) in each projected database at build time"
    ),
    ("mine.projected_dbs", Counter, true, "projected databases materialized"),
    (
        "mine.repr_switches",
        Counter,
        true,
        "vertical nodes whose children were materialized in a different representation than \
         their parent (bitmap to tid-list, bitmap to diffset, or tid-list to diffset)"
    ),
    (
        "mine.tidlist_elems",
        Counter,
        true,
        "u32 tid-list entries produced or read by the vertical engine's sparse kernels"
    ),
    (
        "mine.tidset_words",
        Hist,
        true,
        "bitmap words per tidset level materialized by the vertical engine"
    ),
    (
        "mine.touches_per_projection",
        Hist,
        true,
        "tuple touches per counting pass (the distribution behind mine.tuple_touches)"
    ),
    ("mine.tuple_touches", Counter, true, "tuple visits during support counting"),
    ("session.round", Span, false, "one MiningSession round (any dispatch mode)"),
    ("session.rounds", Counter, true, "session rounds executed"),
    ("session.rounds_cached", Counter, true, "rounds answered verbatim from the previous result"),
    ("session.rounds_filtered", Counter, true, "rounds answered by filtering the previous result"),
    ("session.rounds_fresh", Counter, true, "rounds mined from scratch"),
    ("session.rounds_recycled", Counter, true, "rounds mined on a recycled compressed database"),
    ("storage.budget_high_water", Max, true, "peak bytes resident under a storage memory budget"),
    ("storage.delta_bytes", Counter, true, "bytes written as delta-encoded CDB version files"),
    ("storage.resident_peak", Max, true, "largest segment payload resident at once"),
    ("storage.segment_bytes", Hist, true, "on-disk size of each sealed segment file"),
    ("storage.segments_read", Counter, true, "full segment payload loads (one per pass)"),
    ("storage.segments_written", Counter, true, "segment files sealed"),
    ("storage.spill_bytes", Counter, true, "bytes written to spill partitions"),
    ("storage.spill_partitions", Counter, true, "spill partition files flushed"),
    (
        "storage.spill_record_bytes",
        Hist,
        true,
        "encoded size of each record appended to a spill partition"
    ),
];

/// Looks up a declared name.
pub fn lookup(name: &str) -> Option<&'static MetricDef> {
    ALL.binary_search_by(|d| d.name.cmp(name)).ok().map(|i| &ALL[i])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_and_unique() {
        for pair in ALL.windows(2) {
            assert!(pair[0].name < pair[1].name, "{} !< {}", pair[0].name, pair[1].name);
        }
    }

    #[test]
    fn lookup_finds_declared_names_only() {
        let d = lookup("mine.tuple_touches").expect("declared");
        assert_eq!(d.kind, DefKind::Counter);
        assert!(d.invariant);
        let c = lookup("cover.words_scanned").expect("declared");
        assert!(!c.invariant);
        assert!(lookup("mine.not_a_metric").is_none());
    }

    #[test]
    fn spans_are_never_invariant() {
        for d in ALL.iter().filter(|d| d.kind == DefKind::Span) {
            assert!(!d.invariant, "{} is a span and carries wall time", d.name);
        }
    }

    #[test]
    fn docs_are_nonempty() {
        for d in ALL {
            assert!(!d.doc.is_empty(), "{} lacks a doc line", d.name);
        }
    }
}
