//! Deterministic, mergeable log₂-bucketed histograms.
//!
//! Counters (see [`crate::metrics`]) prove *how much* work a run did;
//! histograms show how that work is *distributed* — a handful of
//! pathological projected databases dominating a dense analog looks
//! identical to uniformly spread work in a flat total, but not in a
//! bucket vector. The recorded distributions (projected-DB sizes,
//! per-projection tuple touches, tidset word counts, cover run lengths,
//! spill record bytes) are declared in [`crate::registry`] next to the
//! counters.
//!
//! # Bucketing
//!
//! Bucket `i` holds values whose bit length is `i`: bucket 0 is the
//! value 0, bucket `i ≥ 1` is the range `[2^(i-1), 2^i - 1]`. The
//! mapping is a single `leading_zeros`, needs no configuration, and is
//! identical on every platform — so bucket counts are part of the
//! deterministic observable output, not an approximation detail.
//!
//! # Determinism
//!
//! Observations land in a per-thread shard (same scheme as the counter
//! registry) and merge by element-wise bucket addition — commutative and
//! associative. A workload whose logical units are fixed (the fan-out
//! units of the miners, the groups of a compression) therefore produces
//! **bit-identical bucket vectors at any `--threads N`** for every
//! histogram whose name is thread-invariant per the registry; only the
//! `cover.*` sweep histograms may vary (chunked sweeps re-partition the
//! claims). Enabling follows [`crate::metrics::enabled`]: one registry
//! switch turns the whole measurement layer on.

use crate::metrics;
use gogreen_util::{FxHashMap, Json};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Number of log₂ buckets: bit lengths 0 (the value 0) through 64.
pub const NUM_BUCKETS: usize = 65;

/// Bucket index of `value`: its bit length.
#[inline]
pub fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Inclusive value range covered by bucket `i` (`None` above 64).
pub fn bucket_range(i: usize) -> Option<(u64, u64)> {
    match i {
        0 => Some((0, 0)),
        1..=64 => {
            let lo = 1u64 << (i - 1);
            Some((lo, lo - 1 + lo))
        }
        _ => None,
    }
}

/// One merged histogram: observation count, exact sum, and log₂ bucket
/// counts. Merging is element-wise addition everywhere, so totals are
/// order-independent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Total observations.
    pub count: u64,
    /// Exact sum of observed values (wrapping add is irrelevant at the
    /// magnitudes recorded here; kept u64 like the counters).
    pub sum: u64,
    /// `buckets[i]` = observations with bit length `i`.
    pub buckets: [u64; NUM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { count: 0, sum: 0, buckets: [0; NUM_BUCKETS] }
    }
}

impl Histogram {
    /// Records one value.
    #[inline]
    pub fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum += value;
        self.buckets[bucket_of(value)] += 1;
    }

    /// Merges `other` into `self` (element-wise addition).
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += *o;
        }
    }

    /// Element-wise difference `self − earlier`; the delta of two
    /// snapshots of a monotone histogram. Saturates at zero so a reset
    /// between snapshots cannot underflow.
    pub fn delta_since(&self, earlier: &Histogram) -> Histogram {
        let mut out = Histogram {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            ..Histogram::default()
        };
        for (i, o) in out.buckets.iter_mut().enumerate() {
            *o = self.buckets[i].saturating_sub(earlier.buckets[i]);
        }
        out
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile (`q` in
    /// `0..=1`), the conventional conservative read of a log₂ sketch.
    pub fn quantile_upper(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_range(i).map_or(u64::MAX, |(_, hi)| hi);
            }
        }
        u64::MAX
    }

    /// Index of the highest non-empty bucket (`None` when empty).
    pub fn max_bucket(&self) -> Option<usize> {
        self.buckets.iter().rposition(|&c| c > 0)
    }

    /// Serializes as `{"count":..,"sum":..,"buckets":{"3":5,...}}` with
    /// only non-empty buckets listed, keyed by bucket index.
    pub fn to_json(&self) -> Json {
        let buckets = Json::Obj(
            self.buckets
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(i, &c)| (i.to_string(), Json::from(c)))
                .collect(),
        );
        Json::obj([
            ("count", Json::from(self.count)),
            ("sum", Json::from(self.sum)),
            ("buckets", buckets),
        ])
    }

    /// Parses the [`Histogram::to_json`] shape back.
    pub fn from_json(json: &Json) -> Option<Histogram> {
        let mut h = Histogram {
            count: json.get("count")?.as_u64()?,
            sum: json.get("sum")?.as_u64()?,
            ..Histogram::default()
        };
        if let Some(Json::Obj(pairs)) = json.get("buckets") {
            for (k, v) in pairs {
                let i: usize = k.parse().ok()?;
                if i >= NUM_BUCKETS {
                    return None;
                }
                h.buckets[i] = v.as_u64()?;
            }
        }
        Some(h)
    }
}

static GLOBAL: Mutex<BTreeMap<&'static str, Histogram>> = Mutex::new(BTreeMap::new());

struct Shard {
    map: FxHashMap<&'static str, Histogram>,
}

impl Drop for Shard {
    fn drop(&mut self) {
        merge_into_global(&mut self.map);
    }
}

thread_local! {
    static SHARD: RefCell<Shard> = RefCell::new(Shard { map: FxHashMap::default() });
}

fn merge_into_global(map: &mut FxHashMap<&'static str, Histogram>) {
    if map.is_empty() {
        return;
    }
    let mut global = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    for (name, h) in map.drain() {
        global.entry(name).and_modify(|g| g.merge(&h)).or_insert(h);
    }
}

/// Records `value` into the histogram `name`. No-op while the metrics
/// registry is disabled (histograms share the counters' master switch,
/// so the disabled path stays one relaxed load and a branch).
#[inline]
pub fn observe(name: &'static str, value: u64) {
    if !metrics::enabled() {
        return;
    }
    // Shard access can fail only during thread teardown; stragglers
    // merge directly, mirroring the counter registry.
    let direct =
        SHARD.try_with(|s| s.borrow_mut().map.entry(name).or_default().observe(value)).is_err();
    if direct {
        let mut one = FxHashMap::default();
        one.entry(name).or_insert_with(Histogram::default).observe(value);
        merge_into_global(&mut one);
    }
}

/// Merges the calling thread's shard and returns every histogram,
/// sorted by name.
pub fn snapshot() -> Vec<(&'static str, Histogram)> {
    let _ = SHARD.try_with(|s| merge_into_global(&mut s.borrow_mut().map));
    let global = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    global.iter().map(|(&k, v)| (k, v.clone())).collect()
}

/// The merged histogram `name`, if it has been touched.
pub fn get(name: &str) -> Option<Histogram> {
    snapshot().into_iter().find(|(n, _)| *n == name).map(|(_, h)| h)
}

/// Clears the global table and the calling thread's shard (same caveat
/// as [`crate::metrics::reset`]: worker threads are scoped and gone).
pub fn reset() {
    let _ = SHARD.try_with(|s| s.borrow_mut().map.clear());
    GLOBAL.lock().unwrap_or_else(|e| e.into_inner()).clear();
}

/// Renders every histogram as an aligned table: count, sum, mean, the
/// p50/p90/p99 bucket upper bounds, and the value range of the largest
/// populated bucket.
pub fn render_table() -> String {
    let snap = snapshot();
    if snap.is_empty() {
        return "  (no histograms recorded)".to_string();
    }
    let width = snap.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (name, h) in snap {
        let top = h
            .max_bucket()
            .and_then(bucket_range)
            .map_or("-".to_string(), |(lo, hi)| format!("{lo}..={hi}"));
        out.push_str(&format!(
            "  {name:<width$}  n={} sum={} mean={:.1} p50≤{} p90≤{} p99≤{} top {top}\n",
            h.count,
            h.sum,
            h.mean(),
            h.quantile_upper(0.50),
            h.quantile_upper(0.90),
            h.quantile_upper(0.99),
        ));
    }
    out.pop();
    out
}

/// Renders every histogram as JSON lines:
/// `{"hist":"mine.projected_db_size","count":..,"sum":..,"buckets":{..}}`.
pub fn to_jsonl() -> String {
    let mut out = String::new();
    for (name, h) in snapshot() {
        let mut line = vec![("hist", Json::from(name))];
        if let Json::Obj(fields) = h.to_json() {
            line.extend(fields.into_iter().map(|(k, v)| match k.as_str() {
                "count" => ("count", v),
                "sum" => ("sum", v),
                _ => ("buckets", v),
            }));
        }
        out.push_str(&Json::obj(line).dump());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Process-global state: serialize tests touching it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn bucketing_is_bit_length() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_range(0), Some((0, 0)));
        assert_eq!(bucket_range(3), Some((4, 7)));
        assert_eq!(bucket_range(64), Some((1 << 63, u64::MAX)));
        assert_eq!(bucket_range(65), None);
    }

    #[test]
    fn observe_merge_and_quantiles() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 1, 5, 9, 100] {
            h.observe(v);
        }
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 116);
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 2); // 1, 1
        assert_eq!(h.buckets[3], 1); // 5
        assert_eq!(h.buckets[4], 1); // 9
        assert_eq!(h.buckets[7], 1); // 100
        assert_eq!(h.quantile_upper(0.5), 1); // 3rd of 6 is a 1
        assert_eq!(h.quantile_upper(1.0), 127);
        assert_eq!(h.max_bucket(), Some(7));
        let mut m = h.clone();
        m.merge(&h);
        assert_eq!(m.count, 12);
        assert_eq!(m.sum, 232);
        assert_eq!(m.buckets[1], 4);
        let d = m.delta_since(&h);
        assert_eq!(d, h);
    }

    #[test]
    fn disabled_observations_record_nothing() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        metrics::set_enabled(false);
        observe("test.hist_disabled", 5);
        assert_eq!(get("test.hist_disabled"), None);
    }

    #[test]
    fn sharded_observations_merge_order_free() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        metrics::set_enabled(true);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                scope.spawn(move || {
                    for i in 0..100u64 {
                        observe("test.hist_sharded", t * 100 + i);
                    }
                });
            }
        });
        metrics::set_enabled(false);
        let h = get("test.hist_sharded").expect("recorded");
        assert_eq!(h.count, 400);
        assert_eq!(h.sum, (0..400u64).sum());
        assert_eq!(h.buckets.iter().sum::<u64>(), 400);
        reset();
    }

    #[test]
    fn json_round_trips() {
        let mut h = Histogram::default();
        for v in [3u64, 70, 70, 4096] {
            h.observe(v);
        }
        let j = h.to_json();
        let back = Histogram::from_json(&Json::parse(&j.dump()).unwrap()).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn jsonl_lists_nonempty_buckets_only() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        metrics::set_enabled(true);
        observe("test.hist_jsonl", 6);
        metrics::set_enabled(false);
        let text = to_jsonl();
        assert!(
            text.contains(r#"{"hist":"test.hist_jsonl","count":1,"sum":6,"buckets":{"3":1}}"#),
            "{text}"
        );
        assert!(render_table().contains("test.hist_jsonl"));
        reset();
    }
}
