//! Point-in-time metric snapshots, deltas between them, and the
//! periodic exporter hook.
//!
//! The one-shot JSONL dump at process exit (`ObsGuard`) cannot serve a
//! long-running `gogreen serve`: a server needs *periodic, mergeable*
//! readings — what happened since the last poll, per tenant or per
//! round. [`MetricsSnapshot`] is that reading: a merge-of-shards capture
//! of every counter, max-gauge and histogram at one instant, with
//! [`MetricsSnapshot::delta_since`] producing the exact activity between
//! two captures (counters and histogram buckets subtract; max-gauges
//! keep the later high-water mark, which is the only meaningful reading
//! of a monotone gauge).
//!
//! Because the underlying counters are bit-identical at any thread count
//! for registry-invariant names, so are snapshot deltas — the property
//! `tests/obs_snapshot.rs` pins.
//!
//! The exporter hook is the polling interface: install a callback with
//! [`set_exporter`] and every [`emit`] call delivers a labelled
//! snapshot. `MiningSession` emits one per round today; `gogreen serve`
//! will emit on a timer.

use crate::histogram::{self, Histogram};
use crate::metrics::{self, Kind, Metric};
use gogreen_util::Json;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// All merged metric state at one point in time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counters and max-gauges, by name.
    pub metrics: BTreeMap<&'static str, Metric>,
    /// Histograms, by name.
    pub hists: BTreeMap<&'static str, Histogram>,
}

impl MetricsSnapshot {
    /// Captures the current merged state of every counter, gauge and
    /// histogram (merging the calling thread's shards first).
    pub fn capture() -> MetricsSnapshot {
        MetricsSnapshot {
            metrics: metrics::snapshot().into_iter().collect(),
            hists: histogram::snapshot().into_iter().collect(),
        }
    }

    /// The activity between `earlier` and `self`: counters and histogram
    /// buckets subtract element-wise (saturating, so a reset between the
    /// two captures cannot underflow); max-gauges keep `self`'s value.
    /// Names absent from `earlier` pass through unchanged.
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::default();
        for (&name, &m) in &self.metrics {
            let value = match (m.kind, earlier.metrics.get(name)) {
                (Kind::Counter, Some(prev)) => m.value.saturating_sub(prev.value),
                _ => m.value,
            };
            out.metrics.insert(name, Metric { kind: m.kind, value });
        }
        for (&name, h) in &self.hists {
            let d = match earlier.hists.get(name) {
                Some(prev) => h.delta_since(prev),
                None => h.clone(),
            };
            out.hists.insert(name, d);
        }
        out
    }

    /// The value of one counter/gauge in this snapshot.
    pub fn value(&self, name: &str) -> Option<u64> {
        self.metrics.get(name).map(|m| m.value)
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty() && self.hists.is_empty()
    }

    /// Serializes as one JSON object:
    /// `{"counters":{..},"maxes":{..},"hists":{name:{count,sum,buckets}}}`.
    pub fn to_json(&self) -> Json {
        let mut counters = Vec::new();
        let mut maxes = Vec::new();
        for (&name, &m) in &self.metrics {
            let pair = (name.to_string(), Json::from(m.value));
            match m.kind {
                Kind::Counter => counters.push(pair),
                Kind::Max => maxes.push(pair),
            }
        }
        let hists =
            self.hists.iter().map(|(&n, h)| (n.to_string(), h.to_json())).collect::<Vec<_>>();
        Json::obj([
            ("counters", Json::Obj(counters)),
            ("maxes", Json::Obj(maxes)),
            ("hists", Json::Obj(hists)),
        ])
    }
}

/// The exporter callback: receives a label and the snapshot.
pub type Exporter = Box<dyn FnMut(&str, &MetricsSnapshot) + Send>;

static EXPORTER: Mutex<Option<Exporter>> = Mutex::new(None);

/// Installs the snapshot exporter; [`emit`] delivers to it until
/// [`take_exporter`] removes it.
pub fn set_exporter(e: Exporter) {
    *EXPORTER.lock().unwrap_or_else(|p| p.into_inner()) = Some(e);
}

/// Removes and returns the exporter (dropping it flushes file sinks).
pub fn take_exporter() -> Option<Exporter> {
    EXPORTER.lock().unwrap_or_else(|p| p.into_inner()).take()
}

/// True while an exporter is installed — emitters use this to skip the
/// capture cost when nothing is listening.
pub fn exporter_installed() -> bool {
    EXPORTER.lock().unwrap_or_else(|p| p.into_inner()).is_some()
}

/// Delivers a labelled snapshot to the installed exporter (no-op
/// otherwise). Callers that want deltas capture before/after and pass
/// the [`MetricsSnapshot::delta_since`] result.
pub fn emit(label: &str, snap: &MetricsSnapshot) {
    let mut exporter = EXPORTER.lock().unwrap_or_else(|p| p.into_inner());
    if let Some(e) = exporter.as_mut() {
        e(label, snap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Snapshots read process-global registries; serialize these tests.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn delta_subtracts_counters_and_buckets_keeps_maxes() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        metrics::reset();
        histogram::reset();
        metrics::set_enabled(true);
        metrics::add("test.snap_c", 10);
        metrics::set_max("test.snap_m", 7);
        histogram::observe("test.snap_h", 3);
        let before = MetricsSnapshot::capture();
        metrics::add("test.snap_c", 5);
        metrics::set_max("test.snap_m", 9);
        histogram::observe("test.snap_h", 4);
        histogram::observe("test.snap_h", 40);
        let after = MetricsSnapshot::capture();
        metrics::set_enabled(false);
        let d = after.delta_since(&before);
        assert_eq!(d.value("test.snap_c"), Some(5));
        assert_eq!(d.value("test.snap_m"), Some(9), "maxes keep the later high water");
        let h = d.hists.get("test.snap_h").expect("hist present");
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 44);
        assert_eq!(h.buckets[3], 1); // 4
        assert_eq!(h.buckets[6], 1); // 40
        metrics::reset();
        histogram::reset();
    }

    #[test]
    fn json_shape_groups_by_kind() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        metrics::reset();
        histogram::reset();
        metrics::set_enabled(true);
        metrics::add("test.snap_json_c", 2);
        metrics::set_max("test.snap_json_m", 3);
        histogram::observe("test.snap_json_h", 1);
        let snap = MetricsSnapshot::capture();
        metrics::set_enabled(false);
        let j = snap.to_json();
        assert_eq!(
            j.get("counters").and_then(|c| c.get("test.snap_json_c")).and_then(Json::as_u64),
            Some(2)
        );
        assert_eq!(
            j.get("maxes").and_then(|c| c.get("test.snap_json_m")).and_then(Json::as_u64),
            Some(3)
        );
        let h = j.get("hists").and_then(|h| h.get("test.snap_json_h")).expect("hist");
        assert_eq!(h.get("count").and_then(Json::as_u64), Some(1));
        metrics::reset();
        histogram::reset();
    }

    #[test]
    fn exporter_receives_emits_until_taken() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _ = take_exporter();
        let seen = std::sync::Arc::new(Mutex::new(Vec::<String>::new()));
        let sink = seen.clone();
        set_exporter(Box::new(move |label, snap| {
            sink.lock().unwrap().push(format!("{label}:{}", snap.metrics.len()));
        }));
        assert!(exporter_installed());
        emit("round-1", &MetricsSnapshot::default());
        drop(take_exporter());
        assert!(!exporter_installed());
        emit("round-2", &MetricsSnapshot::default());
        assert_eq!(seen.lock().unwrap().as_slice(), ["round-1:0"]);
    }
}
