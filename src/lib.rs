#![warn(missing_docs)]

//! # gogreen — Recycle and Reuse Frequent Patterns
//!
//! A Rust implementation of the pattern-recycling frequent-itemset mining
//! system from *"Go Green: Recycle and Reuse Frequent Patterns"* (Cong,
//! Ooi, Tan, Tung — ICDE 2004).
//!
//! This facade crate re-exports the workspace crates under stable module
//! names:
//!
//! * [`data`] — items, transactions, databases, F-lists, patterns.
//! * [`datagen`] — synthetic dataset generators and paper-analog presets.
//! * [`miners`] — baseline miners: Apriori, H-Mine, FP-growth,
//!   Tree Projection, vertical bitmap Eclat.
//! * [`constraints`] — the constrained-mining framework (anti-monotone,
//!   monotone, succinct, convertible constraint classes).
//! * [`core`] — the paper's contribution: MCP/MLP compression, compressed
//!   databases, RP-Mine, Recycle-HM, FP/TP recycling miners, and the
//!   iterative [`core::session::MiningSession`].
//! * [`storage`] — memory budgets, disk spill, and memory-limited mining.
//! * [`obs`] — tracing spans and mining counters (`--trace-out` /
//!   `--metrics-out` in the CLI); the counters quantify the candidate
//!   tests and projections recycling saves.
//! * [`util`] — hashing/timing/memory-accounting support.
//!
//! ## Quickstart
//!
//! ```
//! use gogreen::prelude::*;
//!
//! // A tiny market-basket database (the paper's Table 1).
//! let db = TransactionDb::paper_example();
//!
//! // Round 1: mine at a high support threshold.
//! let old = mine_hmine(&db, MinSupport::Absolute(3));
//!
//! // Round 2: the user relaxes the threshold; recycle round 1's patterns.
//! let compressed = Compressor::new(Strategy::Mcp).compress(&db, &old);
//! let fresh = RecycleHm::default().mine(&compressed, MinSupport::Absolute(2));
//!
//! // Recycling is exact: same answer as mining from scratch.
//! let scratch = mine_hmine(&db, MinSupport::Absolute(2));
//! assert!(fresh.same_patterns_as(&scratch));
//! ```

pub use gogreen_constraints as constraints;
pub use gogreen_core as core;
pub use gogreen_data as data;
pub use gogreen_datagen as datagen;
pub use gogreen_miners as miners;
pub use gogreen_obs as obs;
pub use gogreen_storage as storage;
pub use gogreen_util as util;

/// One-stop imports for applications.
pub mod prelude {
    pub use gogreen_core::batch::{BatchOutcome, BatchPlan, BatchQuery, BatchReport, QueryBatch};
    pub use gogreen_core::cdb::CompressedDb;
    pub use gogreen_core::compress::Compressor;
    pub use gogreen_core::recycle_fp::RecycleFp;
    pub use gogreen_core::recycle_hm::RecycleHm;
    pub use gogreen_core::recycle_tp::RecycleTp;
    pub use gogreen_core::recycle_vt::RecycleVt;
    pub use gogreen_core::rpmine::RpMine;
    pub use gogreen_core::session::MiningSession;
    pub use gogreen_core::store::PatternStore;
    pub use gogreen_core::utility::Strategy;
    pub use gogreen_core::RecyclingMiner;
    pub use gogreen_data::{
        contains_all, CollectSink, CountSink, CsrTuples, FList, Item, ItemCatalog, MinSupport,
        Pattern, PatternSet, PatternSink, ProjectionArena, Transaction, TransactionDb, TupleSlices,
    };
    pub use gogreen_miners::{
        mine_apriori, mine_eclat, mine_fpgrowth, mine_hmine, mine_treeproj, Miner,
    };
}
