//! Observability invariants across the whole pipeline:
//!
//! 1. Thread-invariant counters are *bit-identical* between `--threads 1`
//!    and `--threads 4` on the weather analog — the totals measure
//!    logical work, so parallelism must not change them.
//! 2. Span JSONL round-trips through `gogreen_util::json` with intact
//!    parent links and fields for the compress/cover/mine phases.
//! 3. The disabled instrumentation costs < 2% of a compression run even
//!    at 10⁴ metric updates (near-zero-cost when off) — and the same
//!    holds for the histogram path against a vertical (vt) mining run.
//! 4. Histogram bucket vectors — not just counts and sums — are
//!    bit-identical at 1/2/4/8 threads on the weather and connect4
//!    analogs, for every registry-invariant histogram.
//!
//! The registry and trace sink are process-global, so every test holds
//! `TEST_LOCK` for its whole body.

use gogreen::core::engine::engine_named;
use gogreen::obs::histogram::{self, Histogram};
use gogreen::obs::{metrics, set_trace_writer, take_trace_writer};
use gogreen::prelude::*;
use gogreen::util::pool::Parallelism;
use gogreen_datagen::{DatasetPreset, PresetKind};
use gogreen_util::{Json, Stopwatch};
use std::io::Write;
use std::sync::{Arc, Mutex};

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn weather() -> (TransactionDb, PatternSet) {
    let preset = DatasetPreset::new(PresetKind::Weather, 0.005);
    let db = preset.generate();
    let fp = mine_hmine(&db, preset.xi_old());
    (db, fp)
}

/// Runs one compress + recycle + session-relaxation round at `threads`
/// and returns the thread-invariant counter totals.
fn invariant_counters(db: &TransactionDb, threads: usize) -> Vec<(&'static str, u64)> {
    metrics::reset();
    metrics::set_enabled(true);
    let mut session = gogreen::core::session::MiningSession::new(db.clone())
        .with_engine(gogreen::core::session::Engine::FpTree)
        .with_threads(threads);
    session.run(gogreen_constraints::ConstraintSet::support_only(MinSupport::percent(5.0)));
    // Relaxed: compresses with round 1's patterns and recycles them.
    session.run(gogreen_constraints::ConstraintSet::support_only(MinSupport::percent(2.0)));
    metrics::set_enabled(false);
    let snap: Vec<(&'static str, u64)> = metrics::snapshot()
        .into_iter()
        .filter(|(name, _)| metrics::is_thread_invariant(name))
        .map(|(name, m)| (name, m.value))
        .collect();
    metrics::reset();
    snap
}

#[test]
fn counter_totals_identical_across_thread_counts() {
    let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (db, _) = weather();
    let serial = invariant_counters(&db, 1);
    let threaded = invariant_counters(&db, 4);
    // The interesting counters actually fired…
    for required in ["mine.candidate_tests", "mine.group_hits", "compress.runs", "session.rounds"] {
        assert!(
            serial.iter().any(|&(n, v)| n == required && v > 0),
            "counter {required} missing from {serial:?}"
        );
    }
    // …and parallelism changed none of them.
    assert_eq!(serial, threaded);
}

/// A trace writer into a shared buffer.
struct Buf(Arc<Mutex<Vec<u8>>>);
impl Write for Buf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn span_jsonl_round_trips_with_parent_links() {
    let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (db, fp) = weather();
    let buf = Arc::new(Mutex::new(Vec::new()));
    set_trace_writer(Box::new(Buf(buf.clone())));
    let cdb = Compressor::new(Strategy::Mcp).compress(&db, &fp);
    let patterns = RecycleHm.mine(&cdb, MinSupport::percent(2.0));
    drop(take_trace_writer());
    assert!(!patterns.is_empty());

    let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
    let spans: Vec<Json> = text.lines().map(|l| Json::parse(l).expect("valid JSONL")).collect();
    assert!(!spans.is_empty());
    let by_name = |name: &str| {
        spans
            .iter()
            .find(|j| j.get("name").and_then(Json::as_str) == Some(name))
            .unwrap_or_else(|| panic!("no span {name:?} in:\n{text}"))
    };
    let compress = by_name("compress");
    let cover = by_name("cover");
    let mine = by_name("mine");
    // The cover sweep nests inside compress; both top-level phases have
    // no parent here (no enclosing session round).
    assert_eq!(cover.get("parent"), compress.get("id"));
    assert_eq!(compress.get("parent"), Some(&Json::Null));
    assert_eq!(mine.get("parent"), Some(&Json::Null));
    // Fields survive the round-trip with their values.
    let fields = compress.get("fields").expect("compress fields");
    assert_eq!(fields.get("strategy").and_then(Json::as_str), Some("MCP"));
    assert_eq!(fields.get("tuples").and_then(Json::as_u64), Some(db.len() as u64));
    assert_eq!(
        mine.get("fields").and_then(|f| f.get("patterns")).and_then(Json::as_u64),
        Some(patterns.len() as u64)
    );
    for sp in &spans {
        assert_eq!(sp.get("type").and_then(Json::as_str), Some("span"));
        assert!(sp.get("dur_us").and_then(Json::as_u64).is_some());
    }
}

#[test]
fn disabled_instrumentation_is_nearly_free() {
    let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    metrics::set_enabled(false);
    let _ = take_trace_writer();
    let (db, fp) = weather();
    let compressor = Compressor::new(Strategy::Mcp);

    // Warm up, then time the compress run (itself full of disabled
    // metric/span calls) and 10⁴ explicit disabled updates.
    std::hint::black_box(compressor.compress(&db, &fp));
    let mut watch = Stopwatch::started();
    std::hint::black_box(compressor.compress(&db, &fp));
    let compress_time = watch.lap();
    for k in 0..10_000u64 {
        metrics::add("obs.disabled_probe", k);
        metrics::set_max("obs.disabled_probe_max", k);
    }
    let overhead = watch.lap();

    assert_eq!(metrics::get("obs.disabled_probe"), None, "disabled add must record nothing");
    // < 2% of the run, with an absolute floor so scheduler noise on a
    // fast compress cannot flake the assertion.
    let budget = std::cmp::max(compress_time.mul_f64(0.02), std::time::Duration::from_millis(2));
    assert!(
        overhead < budget,
        "10k disabled updates took {overhead:?}, budget {budget:?} (compress {compress_time:?})"
    );

    // Same story on the vertical engine and the histogram path: a vt
    // mining run is full of disabled `histogram::observe` calls (tidset
    // word counts, projected sizes), and 10⁴ explicit disabled observes
    // must stay under the same 2% budget.
    histogram::reset();
    let vt = engine_named("vt").expect("vt engine registered").raw();
    let mut sink = CountSink::new();
    vt.mine_into_par(&db, MinSupport::percent(5.0), Parallelism::serial(), &mut sink);
    let mut watch = Stopwatch::started();
    let mut sink = CountSink::new();
    vt.mine_into_par(&db, MinSupport::percent(5.0), Parallelism::serial(), &mut sink);
    let vt_time = watch.lap();
    for k in 0..10_000u64 {
        histogram::observe("obs.disabled_probe_hist", k);
    }
    let hist_overhead = watch.lap();
    assert!(sink.count() > 0);
    assert_eq!(
        histogram::get("obs.disabled_probe_hist"),
        None,
        "disabled observe must record nothing"
    );
    let budget = std::cmp::max(vt_time.mul_f64(0.02), std::time::Duration::from_millis(2));
    assert!(
        hist_overhead < budget,
        "10k disabled observes took {hist_overhead:?}, budget {budget:?} (vt mine {vt_time:?})"
    );
}

/// Mines `db` fresh and recycled on the hmine and vt engines at
/// `threads` and returns the registry-invariant histogram totals.
fn invariant_histograms(
    db: &TransactionDb,
    cdb: &gogreen::core::cdb::CompressedDb,
    xi_new: MinSupport,
    threads: usize,
) -> Vec<(&'static str, Histogram)> {
    metrics::reset();
    histogram::reset();
    metrics::set_enabled(true);
    let par = Parallelism::threads(threads);
    for key in ["hmine", "vt"] {
        let engine = engine_named(key).expect("engine registered");
        let mut sink = CountSink::new();
        engine.raw().mine_into_par(db, xi_new, par, &mut sink);
        let mut sink = CountSink::new();
        engine.recycling(par).expect("recycling pair").mine_into_par(cdb, xi_new, par, &mut sink);
    }
    metrics::set_enabled(false);
    let snap: Vec<(&'static str, Histogram)> = histogram::snapshot()
        .into_iter()
        .filter(|(name, _)| metrics::is_thread_invariant(name))
        .collect();
    metrics::reset();
    histogram::reset();
    snap
}

#[test]
fn histogram_buckets_identical_across_thread_counts() {
    let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for kind in [PresetKind::Weather, PresetKind::Connect4] {
        let preset = DatasetPreset::new(kind, 0.005);
        let db = preset.generate();
        let fp = mine_hmine(&db, preset.xi_old());
        let cdb = Compressor::new(Strategy::Mcp).compress(&db, &fp);
        let xi_new = *preset.sweep().last().expect("non-empty sweep");
        let serial = invariant_histograms(&db, &cdb, xi_new, 1);
        // The horizontal and vertical shape histograms actually fired…
        for required in ["mine.projected_db_size", "mine.tidset_words"] {
            assert!(
                serial.iter().any(|(n, h)| *n == required && h.count > 0),
                "{required} missing on {} from {:?}",
                preset.name(),
                serial.iter().map(|(n, _)| n).collect::<Vec<_>>()
            );
        }
        // …and every bucket vector (Histogram's PartialEq covers all 65
        // buckets, count and sum) is identical at any fan-out.
        for threads in [2usize, 4, 8] {
            let threaded = invariant_histograms(&db, &cdb, xi_new, threads);
            assert_eq!(serial, threaded, "{} at {threads} threads", preset.name());
        }
    }
}
