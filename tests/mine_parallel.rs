//! Differential tests for the parallel mining phase: at any thread count
//! the emitted pattern stream must be *byte-identical* to the serial run
//! (same patterns, same supports, same order), and every `mine.*`
//! counter total must be *bit-identical* — parallelism redistributes the
//! work without changing it.
//!
//! Covers all baseline miners on the raw weather analog and all
//! recycling miners on both an uncompressed view and an MCP-compressed
//! database.
//!
//! The metrics registry is process-global, so every test holds
//! `TEST_LOCK` for its whole body.

use gogreen::data::FnSink;
use gogreen::miners::engine::vt::VtRepr;
use gogreen::miners::{Eclat, FpGrowth, HMine, TreeProjection};
use gogreen::obs::metrics;
use gogreen::prelude::*;
use gogreen::util::pool::Parallelism;
use gogreen_datagen::{DatasetPreset, PresetKind};
use std::sync::Mutex;

static TEST_LOCK: Mutex<()> = Mutex::new(());

const XI_NEW: MinSupport = MinSupport::Relative(0.02);

fn weather() -> (TransactionDb, CompressedDb) {
    let preset = DatasetPreset::new(PresetKind::Weather, 0.005);
    let db = preset.generate();
    let fp = mine_hmine(&db, preset.xi_old());
    let cdb = Compressor::new(Strategy::Mcp).compress(&db, &fp);
    (db, cdb)
}

/// The census analog at its own sweep floor (75% — pumsb supports are
/// two orders above weather's; relaxing further explodes the lattice):
/// the regime where the adaptive engine mixes representations per node.
fn pumsb() -> (TransactionDb, CompressedDb, MinSupport) {
    let preset = DatasetPreset::new(PresetKind::Pumsb, 0.005);
    let db = preset.generate();
    let fp = mine_hmine(&db, preset.xi_old());
    let cdb = Compressor::new(Strategy::Mcp).compress(&db, &fp);
    let xi_new = *preset.sweep().last().expect("pumsb sweep");
    (db, cdb, xi_new)
}

/// The exact emission sequence of one mining run.
type Stream = Vec<(Vec<Item>, u64)>;

fn stream_of(f: &mut dyn FnMut(&mut dyn PatternSink)) -> Stream {
    let mut out: Stream = Vec::new();
    {
        let mut sink = FnSink(|items: &[Item], sup: u64| out.push((items.to_vec(), sup)));
        f(&mut sink);
    }
    out
}

fn assert_streams_match(serial: &Stream, name: &str, mut run: impl FnMut(Parallelism) -> Stream) {
    assert!(!serial.is_empty(), "{name}: serial run emitted nothing");
    for threads in [2usize, 4, 8] {
        let par = run(Parallelism::threads(threads));
        assert_eq!(serial.len(), par.len(), "{name} at {threads} threads: stream length");
        assert!(serial == &par, "{name} at {threads} threads: stream diverged from serial");
    }
}

#[test]
fn baseline_miner_streams_identical_across_thread_counts() {
    let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (db, _) = weather();
    let miners: Vec<Box<dyn Miner>> =
        vec![Box::new(HMine), Box::new(FpGrowth), Box::new(TreeProjection), Box::new(Eclat::new())];
    for m in &miners {
        let serial =
            stream_of(&mut |sink| m.mine_into_par(&db, XI_NEW, Parallelism::serial(), sink));
        assert_streams_match(&serial, m.name(), |par| {
            stream_of(&mut |sink| m.mine_into_par(&db, XI_NEW, par, sink))
        });
    }
}

#[test]
fn recycling_miner_streams_identical_across_thread_counts() {
    let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (db, cdb) = weather();
    let raw = CompressedDb::uncompressed(&db);
    let miners: Vec<Box<dyn RecyclingMiner>> = vec![
        Box::new(RecycleHm),
        Box::new(RecycleFp::default()),
        Box::new(RecycleTp),
        Box::new(RecycleVt::new()),
        Box::new(RpMine::default()),
    ];
    for m in &miners {
        for (label, view) in [("uncompressed", &raw), ("MCP", &cdb)] {
            let serial =
                stream_of(&mut |sink| m.mine_into_par(view, XI_NEW, Parallelism::serial(), sink));
            assert_streams_match(&serial, &format!("{} on {label}", m.name()), |par| {
                stream_of(&mut |sink| m.mine_into_par(view, XI_NEW, par, sink))
            });
        }
    }
}

/// The vertical family under every `--vt-repr` mode, raw and recycled,
/// on the sparse weather and pumsb analogs: every forced representation
/// must emit the byte-identical stream the adaptive default emits, at
/// every thread count.
#[test]
fn vt_repr_streams_identical_across_modes_and_threads() {
    let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (wdb, wcdb) = weather();
    for (db, cdb, xi) in [(wdb, wcdb, XI_NEW), pumsb()] {
        let mut raw_first: Option<Stream> = None;
        let mut rec_first: Option<Stream> = None;
        for repr in VtRepr::ALL {
            let raw = Eclat::with_repr(repr);
            let serial =
                stream_of(&mut |sink| raw.mine_into_par(&db, xi, Parallelism::serial(), sink));
            assert_streams_match(&serial, &format!("Eclat --vt-repr {repr}"), |par| {
                stream_of(&mut |sink| raw.mine_into_par(&db, xi, par, sink))
            });
            assert_eq!(
                &serial,
                raw_first.get_or_insert_with(|| serial.clone()),
                "Eclat --vt-repr {repr}: stream differs across modes"
            );
            let rec = RecycleVt::with_repr(repr);
            let serial =
                stream_of(&mut |sink| rec.mine_into_par(&cdb, xi, Parallelism::serial(), sink));
            assert_streams_match(&serial, &format!("VT-recycle --vt-repr {repr}"), |par| {
                stream_of(&mut |sink| rec.mine_into_par(&cdb, xi, par, sink))
            });
            assert_eq!(
                &serial,
                rec_first.get_or_insert_with(|| serial.clone()),
                "VT-recycle --vt-repr {repr}: stream differs across modes"
            );
        }
    }
}

/// Runs every miner once at `threads` and returns all `mine.*` counter
/// totals.
fn mine_counters(
    db: &TransactionDb,
    cdb: &CompressedDb,
    threads: usize,
) -> Vec<(&'static str, u64)> {
    let par = Parallelism::threads(threads);
    metrics::reset();
    metrics::set_enabled(true);
    let mut sink = FnSink(|_: &[Item], _: u64| {});
    let eclat = Eclat::new();
    for m in [&HMine as &dyn Miner, &FpGrowth, &TreeProjection, &eclat] {
        m.mine_into_par(db, XI_NEW, par, &mut sink);
    }
    let (rvt, rfp, rp) = (RecycleVt::new(), RecycleFp::default(), RpMine::default());
    let recyclers: [&dyn RecyclingMiner; 5] = [&RecycleHm, &rfp, &RecycleTp, &rvt, &rp];
    for m in recyclers {
        m.mine_into_par(cdb, XI_NEW, par, &mut sink);
    }
    metrics::set_enabled(false);
    let snap: Vec<(&'static str, u64)> = metrics::snapshot()
        .into_iter()
        .filter(|(name, _)| name.starts_with("mine."))
        .map(|(name, m)| (name, m.value))
        .collect();
    metrics::reset();
    snap
}

#[test]
fn mine_counters_bit_identical_across_thread_counts() {
    let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (db, cdb) = weather();
    let serial = mine_counters(&db, &cdb, 1);
    let threaded = mine_counters(&db, &cdb, 4);
    for required in [
        "mine.candidate_tests",
        "mine.tuple_touches",
        "mine.projected_dbs",
        "mine.max_depth",
        "mine.bitmap_words_scanned",
    ] {
        assert!(
            serial.iter().any(|&(n, v)| n == required && v > 0),
            "counter {required} missing from {serial:?}"
        );
    }
    assert_eq!(serial, threaded);
}
