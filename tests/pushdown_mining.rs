//! Constrained mining with search pushdown: the pruned searches must
//! emit exactly the unconstrained result filtered by the pushed
//! predicates — for plain databases (NaiveProjection, H-Mine) and for
//! compressed databases (RP-Mine: constrained *recycling*) — over seeded
//! random databases and constraint sets.

use gogreen::core::utility::Strategy;
use gogreen::prelude::*;
use gogreen::util::rng::{Rng, SmallRng};
use gogreen_constraints::{Constraint, ConstraintSet, ItemAttributes, Pushdown};
use gogreen_data::CollectSink;
use gogreen_miners::{mine_apriori, HMine, NaiveProjection};
use std::collections::BTreeSet;

/// Random database: 1..26 tuples of 1..8 distinct items over 0..12.
fn random_db(rng: &mut SmallRng) -> TransactionDb {
    let rows = 1 + rng.gen_index(25);
    let mut txs = Vec::with_capacity(rows);
    for _ in 0..rows {
        let len = 1 + rng.gen_index(7);
        let mut set = BTreeSet::new();
        for _ in 0..len {
            set.insert(rng.gen_below(12) as u32);
        }
        txs.push(Transaction::from_ids(set));
    }
    TransactionDb::from_transactions(txs)
}

/// A random pushable constraint set.
fn random_cs(rng: &mut SmallRng) -> ConstraintSet {
    let mut cs = ConstraintSet::support_only(MinSupport::Absolute(1 + rng.gen_below(4)));
    if rng.gen_bool(0.5) {
        cs = cs.with(Constraint::MaxLength(1 + rng.gen_index(3)));
    }
    if rng.gen_bool(0.5) {
        let mut set = BTreeSet::new();
        let want = 2 + rng.gen_index(7);
        while set.len() < want {
            set.insert(rng.gen_below(12) as u32);
        }
        cs = cs.with(Constraint::SubsetOf(set.into_iter().map(Item).collect()));
    }
    if rng.gen_bool(0.5) {
        let bound = 20.0 + rng.gen_f64() * 70.0;
        cs = cs.with(Constraint::MaxSum { attr: price_attr(), bound });
    }
    cs
}

fn attrs() -> ItemAttributes {
    let mut a = ItemAttributes::new();
    let id = a.add_column((0..12).map(|i| 5.0 + 3.0 * i as f64).collect(), 5.0);
    assert_eq!(id, price_attr());
    a
}

fn price_attr() -> gogreen_constraints::AttrId {
    gogreen_constraints::AttrId(0)
}

/// The expected result: oracle output filtered by the pushed predicates.
fn expected(db: &TransactionDb, cs: &ConstraintSet, attrs: &ItemAttributes) -> PatternSet {
    let pd = Pushdown::from_constraints(cs, attrs);
    mine_apriori(db, cs.min_support()).filter(|p| pd.prefix_ok(p.items(), attrs))
}

#[test]
fn naive_pushdown_is_exact() {
    for case in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(0x4a17_0000 + case);
        let db = random_db(&mut rng);
        let cs = random_cs(&mut rng);
        let attrs = attrs();
        let pd = Pushdown::from_constraints(&cs, &attrs);
        let mut sink = CollectSink::new();
        NaiveProjection.mine_pruned(&db, cs.min_support(), &pd.search(&attrs), &mut sink);
        let got = sink.into_set();
        let want = expected(&db, &cs, &attrs);
        assert!(got.same_patterns_as(&want), "case {case}: got {} want {}", got.len(), want.len());
    }
}

#[test]
fn hmine_pushdown_is_exact() {
    for case in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(0x8517_0000 + case);
        let db = random_db(&mut rng);
        let cs = random_cs(&mut rng);
        let attrs = attrs();
        let pd = Pushdown::from_constraints(&cs, &attrs);
        let mut sink = CollectSink::new();
        HMine.mine_pruned(&db, cs.min_support(), &pd.search(&attrs), &mut sink);
        let got = sink.into_set();
        let want = expected(&db, &cs, &attrs);
        assert!(got.same_patterns_as(&want), "case {case}: got {} want {}", got.len(), want.len());
    }
}

#[test]
fn recycled_pushdown_is_exact() {
    for case in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(0x9ec7_0000 + case);
        let db = random_db(&mut rng);
        let cs = random_cs(&mut rng);
        let xi_old = 1 + rng.gen_below(4);
        let strategy = if rng.gen_bool(0.5) { Strategy::Mlp } else { Strategy::Mcp };
        let attrs = attrs();
        let fp_old = mine_apriori(&db, MinSupport::Absolute(xi_old));
        let cdb = Compressor::new(strategy).compress(&db, &fp_old);
        let pd = Pushdown::from_constraints(&cs, &attrs);
        let mut sink = CollectSink::new();
        RpMine::default().mine_pruned(&cdb, cs.min_support(), &pd.search(&attrs), &mut sink);
        let got = sink.into_set();
        let want = expected(&db, &cs, &attrs);
        assert!(got.same_patterns_as(&want), "case {case}: got {} want {}", got.len(), want.len());
    }
}

/// Determinism sanity check with a concrete, human-auditable case.
#[test]
fn concrete_pushdown_example() {
    let db = TransactionDb::paper_example();
    let attrs = ItemAttributes::new();
    let cs = ConstraintSet::support_only(MinSupport::Absolute(2))
        .with(Constraint::MaxLength(2))
        .with(Constraint::SubsetOf(vec![Item(2), Item(3), Item(5), Item(6)]));
    let pd = Pushdown::from_constraints(&cs, &attrs);
    let mut sink = CollectSink::new();
    HMine.mine_pruned(&db, cs.min_support(), &pd.search(&attrs), &mut sink);
    let got = sink.into_set();
    // Allowed items: c(2), d(3), f(5), g(6); patterns of length ≤ 2 with
    // support ≥ 2: c, d, f, g, cd, cf, cg, df, dg, fg.
    assert_eq!(got.len(), 10);
    assert!(got.contains(&[Item(3), Item(6)])); // dg:2
    assert!(!got.contains(&[Item(0)])); // a excluded by SubsetOf
    assert!(!got.contains(&[Item(2), Item(5), Item(6)])); // fgc too long
}
