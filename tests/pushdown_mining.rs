//! Constrained mining with search pushdown: the pruned searches must
//! emit exactly the unconstrained result filtered by the pushed
//! predicates — for plain databases (NaiveProjection, H-Mine) and for
//! compressed databases (RP-Mine: constrained *recycling*).

use gogreen::core::utility::Strategy;
use gogreen::prelude::*;
use gogreen_constraints::{Constraint, ConstraintSet, ItemAttributes, Pushdown};
use gogreen_data::CollectSink;
use gogreen_miners::{mine_apriori, HMine, NaiveProjection};
use proptest::prelude::*;
use proptest::strategy::Strategy as _;

fn db_strategy() -> impl proptest::strategy::Strategy<Value = TransactionDb> {
    prop::collection::vec(prop::collection::btree_set(0u32..12, 1..8), 1..26).prop_map(
        |rows| {
            TransactionDb::from_transactions(
                rows.into_iter()
                    .map(Transaction::from_ids)
                    .collect(),
            )
        },
    )
}

/// A random pushable constraint set plus its attribute table.
fn cs_strategy() -> impl proptest::strategy::Strategy<Value = ConstraintSet> {
    (
        1u64..5,
        prop::option::of(1usize..4),
        prop::option::of(prop::collection::btree_set(0u32..12, 2..9)),
        prop::option::of(20.0f64..90.0),
    )
        .prop_map(|(ms, maxlen, subset, budget)| {
            let mut cs = ConstraintSet::support_only(MinSupport::Absolute(ms));
            if let Some(k) = maxlen {
                cs = cs.with(Constraint::MaxLength(k));
            }
            if let Some(s) = subset {
                cs = cs.with(Constraint::SubsetOf(s.into_iter().map(Item).collect()));
            }
            if let Some(b) = budget {
                cs = cs.with(Constraint::MaxSum { attr: price_attr(), bound: b });
            }
            cs
        })
}

fn attrs() -> ItemAttributes {
    let mut a = ItemAttributes::new();
    let id = a.add_column((0..12).map(|i| 5.0 + 3.0 * i as f64).collect(), 5.0);
    assert_eq!(id, price_attr());
    a
}

fn price_attr() -> gogreen_constraints::AttrId {
    gogreen_constraints::AttrId(0)
}

/// The expected result: oracle output filtered by the pushed predicates.
fn expected(db: &TransactionDb, cs: &ConstraintSet, attrs: &ItemAttributes) -> PatternSet {
    let pd = Pushdown::from_constraints(cs, attrs);
    mine_apriori(db, cs.min_support())
        .filter(|p| pd.prefix_ok(p.items(), attrs))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn naive_pushdown_is_exact(db in db_strategy(), cs in cs_strategy()) {
        let attrs = attrs();
        let pd = Pushdown::from_constraints(&cs, &attrs);
        let mut sink = CollectSink::new();
        NaiveProjection.mine_pruned(&db, cs.min_support(), &pd.search(&attrs), &mut sink);
        let got = sink.into_set();
        let want = expected(&db, &cs, &attrs);
        prop_assert!(got.same_patterns_as(&want), "got {} want {}", got.len(), want.len());
    }

    #[test]
    fn hmine_pushdown_is_exact(db in db_strategy(), cs in cs_strategy()) {
        let attrs = attrs();
        let pd = Pushdown::from_constraints(&cs, &attrs);
        let mut sink = CollectSink::new();
        HMine.mine_pruned(&db, cs.min_support(), &pd.search(&attrs), &mut sink);
        let got = sink.into_set();
        let want = expected(&db, &cs, &attrs);
        prop_assert!(got.same_patterns_as(&want), "got {} want {}", got.len(), want.len());
    }

    #[test]
    fn recycled_pushdown_is_exact(
        db in db_strategy(),
        cs in cs_strategy(),
        xi_old in 1u64..5,
        mlp in any::<bool>(),
    ) {
        let attrs = attrs();
        let strategy = if mlp { Strategy::Mlp } else { Strategy::Mcp };
        let fp_old = mine_apriori(&db, MinSupport::Absolute(xi_old));
        let cdb = Compressor::new(strategy).compress(&db, &fp_old);
        let pd = Pushdown::from_constraints(&cs, &attrs);
        let mut sink = CollectSink::new();
        RpMine::default().mine_pruned(&cdb, cs.min_support(), &pd.search(&attrs), &mut sink);
        let got = sink.into_set();
        let want = expected(&db, &cs, &attrs);
        prop_assert!(got.same_patterns_as(&want), "got {} want {}", got.len(), want.len());
    }
}

/// Determinism sanity check with a concrete, human-auditable case.
#[test]
fn concrete_pushdown_example() {
    let db = TransactionDb::paper_example();
    let attrs = ItemAttributes::new();
    let cs = ConstraintSet::support_only(MinSupport::Absolute(2))
        .with(Constraint::MaxLength(2))
        .with(Constraint::SubsetOf(vec![
            Item(2),
            Item(3),
            Item(5),
            Item(6),
        ]));
    let pd = Pushdown::from_constraints(&cs, &attrs);
    let mut sink = CollectSink::new();
    HMine.mine_pruned(&db, cs.min_support(), &pd.search(&attrs), &mut sink);
    let got = sink.into_set();
    // Allowed items: c(2), d(3), f(5), g(6); patterns of length ≤ 2 with
    // support ≥ 2: c, d, f, g, cd, cf, cg, df, dg, fg.
    assert_eq!(got.len(), 10);
    assert!(got.contains(&[Item(3), Item(6)])); // dg:2
    assert!(!got.contains(&[Item(0)])); // a excluded by SubsetOf
    assert!(!got.contains(&[Item(2), Item(5), Item(6)])); // fgc too long
}
