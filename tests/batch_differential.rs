//! Differential tests for batched multi-query mining: every member of a
//! [`QueryBatch`] must receive the *byte-identical* stream a solo run of
//! the same query produces — across all four engine families, on the
//! raw and the MCP-compressed substrate, at any thread count — and the
//! shared pass's thread-invariant counters (`mine.*`, `batch.*`) must be
//! bit-identical at any `--threads N`.
//!
//! The metrics registry is process-global, so every test holds
//! `TEST_LOCK` for its whole body.

use gogreen::constraints::{Constraint, ConstraintSet};
use gogreen::data::FnSink;
use gogreen::obs::metrics;
use gogreen::prelude::*;
use gogreen::util::pool::Parallelism;
use gogreen_datagen::{DatasetPreset, PresetKind};
use std::sync::Mutex;

static TEST_LOCK: Mutex<()> = Mutex::new(());

const FAMILIES: [&str; 4] = ["hmine", "fp", "tp", "vt"];

fn weather() -> (TransactionDb, CompressedDb) {
    let preset = DatasetPreset::new(PresetKind::Weather, 0.005);
    let db = preset.generate();
    let fp = mine_hmine(&db, preset.xi_old());
    let cdb = Compressor::new(Strategy::Mcp).compress(&db, &fp);
    (db, cdb)
}

/// A mixed-fleet batch on `db`: a tight pure-support query, a loose one
/// capped in length, and a mid query confined to the densest items.
fn fleet(db: &TransactionDb) -> QueryBatch {
    let counts = db.item_supports();
    let mut by_support: Vec<usize> = (0..counts.len()).collect();
    by_support.sort_by_key(|&i| std::cmp::Reverse(counts[i]));
    let mut dense: Vec<Item> =
        by_support[..12.min(by_support.len())].iter().map(|&i| Item(i as u32)).collect();
    dense.sort_unstable();

    let mut batch = QueryBatch::new();
    batch.push(BatchQuery::new("tight", ConstraintSet::support_only(MinSupport::Relative(0.04))));
    batch.push(BatchQuery::new(
        "loose-short",
        ConstraintSet::support_only(MinSupport::Relative(0.02)).with(Constraint::MaxLength(2)),
    ));
    batch.push(BatchQuery::new(
        "mid-dense",
        ConstraintSet::support_only(MinSupport::Relative(0.03)).with(Constraint::SubsetOf(dense)),
    ));
    batch
}

/// The exact emission sequence of one query's stream.
type Stream = Vec<(Vec<Item>, u64)>;

fn stream_of(f: &mut dyn FnMut(&mut dyn PatternSink)) -> Stream {
    let mut out: Stream = Vec::new();
    {
        let mut sink = FnSink(|items: &[Item], sup: u64| out.push((items.to_vec(), sup)));
        f(&mut sink);
    }
    out
}

/// Runs `batch` on the raw db and returns all member streams.
fn batched_raw(batch: &QueryBatch, db: &TransactionDb, algo: &str) -> Vec<Stream> {
    let k = batch.len();
    let mut streams: Vec<Stream> = vec![Vec::new(); k];
    {
        let mut sinks: Vec<FnSink<_>> = Vec::new();
        let mut parts = streams.iter_mut();
        for _ in 0..k {
            let out = parts.next().unwrap();
            sinks.push(FnSink(move |items: &[Item], sup: u64| out.push((items.to_vec(), sup))));
        }
        let mut refs: Vec<&mut dyn PatternSink> =
            sinks.iter_mut().map(|s| s as &mut dyn PatternSink).collect();
        batch.run_into(db, algo, &mut refs).unwrap_or_else(|e| panic!("{algo}: {e}"));
    }
    streams
}

/// Runs `batch` on the compressed substrate and returns member streams.
fn batched_recycled(batch: &QueryBatch, cdb: &CompressedDb, algo: &str) -> Vec<Stream> {
    let k = batch.len();
    let mut streams: Vec<Stream> = vec![Vec::new(); k];
    {
        let mut sinks: Vec<FnSink<_>> = Vec::new();
        let mut parts = streams.iter_mut();
        for _ in 0..k {
            let out = parts.next().unwrap();
            sinks.push(FnSink(move |items: &[Item], sup: u64| out.push((items.to_vec(), sup))));
        }
        let mut refs: Vec<&mut dyn PatternSink> =
            sinks.iter_mut().map(|s| s as &mut dyn PatternSink).collect();
        batch.run_recycled_into(cdb, algo, &mut refs).unwrap_or_else(|e| panic!("{algo}: {e}"));
    }
    streams
}

#[test]
fn raw_batched_streams_match_solo_at_every_thread_count() {
    let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (db, _) = weather();
    for algo in FAMILIES {
        let batch = fleet(&db);
        let solo: Vec<Stream> = (0..batch.len())
            .map(|i| stream_of(&mut |sink| batch.run_solo(i, &db, algo, sink).unwrap()))
            .collect();
        assert!(solo.iter().all(|s| !s.is_empty()), "{algo}: a solo run emitted nothing");
        for threads in [1usize, 4, 8] {
            let batch = fleet(&db).with_parallelism(Parallelism::threads(threads));
            let streams = batched_raw(&batch, &db, algo);
            for (i, (got, want)) in streams.iter().zip(&solo).enumerate() {
                assert_eq!(
                    got, want,
                    "{algo} raw query #{i} at {threads} threads diverged from solo"
                );
            }
        }
    }
}

#[test]
fn recycled_batched_streams_match_solo_at_every_thread_count() {
    let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (db, cdb) = weather();
    for algo in FAMILIES {
        let batch = fleet(&db);
        let solo: Vec<Stream> = (0..batch.len())
            .map(|i| stream_of(&mut |sink| batch.run_solo_recycled(i, &cdb, algo, sink).unwrap()))
            .collect();
        assert!(solo.iter().all(|s| !s.is_empty()), "{algo}: a solo run emitted nothing");
        for threads in [1usize, 4, 8] {
            let batch = fleet(&db).with_parallelism(Parallelism::threads(threads));
            let streams = batched_recycled(&batch, &cdb, algo);
            for (i, (got, want)) in streams.iter().zip(&solo).enumerate() {
                assert_eq!(
                    got, want,
                    "{algo} MCP query #{i} at {threads} threads diverged from solo"
                );
            }
        }
    }
}

/// Raw and recycled substrates answer every member identically (order
/// aside, both are normalized, so even order matches).
#[test]
fn raw_and_recycled_batches_agree() {
    let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (db, cdb) = weather();
    for algo in FAMILIES {
        let batch = fleet(&db);
        let raw = batched_raw(&batch, &db, algo);
        let rec = batched_recycled(&batch, &cdb, algo);
        assert_eq!(raw, rec, "{algo}: raw and MCP batches disagree");
    }
}

/// Runs the fleet across every family (raw + MCP) at `threads` and
/// returns all thread-invariant `mine.*` / `batch.*` counter totals.
fn batch_counters(
    db: &TransactionDb,
    cdb: &CompressedDb,
    threads: usize,
) -> Vec<(&'static str, u64)> {
    metrics::reset();
    metrics::set_enabled(true);
    for algo in FAMILIES {
        let batch = fleet(db).with_parallelism(Parallelism::threads(threads));
        batch.run(db, algo).unwrap_or_else(|e| panic!("{algo}: {e}"));
        let batch = fleet(db).with_parallelism(Parallelism::threads(threads));
        batch.run_recycled(cdb, algo).unwrap_or_else(|e| panic!("{algo}: {e}"));
    }
    metrics::set_enabled(false);
    let snap: Vec<(&'static str, u64)> = metrics::snapshot()
        .into_iter()
        .filter(|(name, _)| name.starts_with("mine.") || name.starts_with("batch."))
        .map(|(name, m)| (name, m.value))
        .collect();
    metrics::reset();
    snap
}

#[test]
fn shared_pass_counters_bit_identical_across_thread_counts() {
    let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (db, cdb) = weather();
    let serial = batch_counters(&db, &cdb, 1);
    let threaded = batch_counters(&db, &cdb, 4);
    for required in [
        "batch.queries",
        "batch.shared_passes",
        "batch.demux_patterns",
        "mine.tuple_touches",
        "mine.candidate_tests",
    ] {
        assert!(
            serial.iter().any(|&(n, v)| n == required && v > 0),
            "counter {required} missing from {serial:?}"
        );
    }
    assert_eq!(serial, threaded);
}
