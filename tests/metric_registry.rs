//! Lint: the metric-name registry is the single source of truth.
//!
//! Every observable name the workspace emits — counters, max-gauges,
//! histograms, spans — is a string literal somewhere under `crates/*/src`
//! or `src/`. This test walks those sources and checks both directions:
//!
//! 1. every literal that *looks like* a metric name (one of the six
//!    reserved dotted prefixes) is declared in
//!    [`gogreen::obs::registry::ALL`] — no undocumented names, no typos
//!    silently creating a second counter;
//! 2. every registry entry is actually emitted (or at least referenced)
//!    somewhere outside the registry itself — no dead declarations.
//!
//! The registry's own unit tests enforce sortedness/uniqueness and that
//! every entry carries a doc string; this test closes the loop from the
//! emission sites.

use gogreen::obs::registry;
use std::path::{Path, PathBuf};

/// The reserved metric namespaces. A quoted literal `"<prefix><word>"`
/// anywhere in the sources is treated as a metric name; other literals
/// (error messages, test fixtures, `obs.*` probes) are ignored.
const PREFIXES: &[&str] =
    &["mine.", "compress.", "cover.", "session.", "storage.", "alloc.", "batch."];

fn looks_like_metric(s: &str) -> bool {
    PREFIXES.iter().any(|p| {
        s.starts_with(p)
            && s.len() > p.len()
            && s[p.len()..].chars().all(|c| c.is_ascii_lowercase() || c == '_')
    })
}

fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Extracts the double-quoted string literals of one source line.
/// Comment lines are skipped by the caller; escapes are unwrapped just
/// enough that `"\""` does not end a literal early. Metric names are
/// plain ASCII identifiers, so this does not need to be a full lexer.
fn string_literals(line: &str, out: &mut Vec<String>) {
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let mut lit = Vec::new();
            let mut j = i + 1;
            while j < bytes.len() && bytes[j] != b'"' {
                if bytes[j] == b'\\' {
                    j += 1;
                }
                if j < bytes.len() {
                    lit.push(bytes[j]);
                }
                j += 1;
            }
            out.push(String::from_utf8_lossy(&lit).into_owned());
            i = j + 1;
        } else {
            i += 1;
        }
    }
}

/// All whole string literals in the scanned sources, with `file:line`
/// provenance. The registry module itself is excluded — it declares
/// every name and would satisfy both directions vacuously.
fn scan_sources() -> Vec<(String, String)> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut files = Vec::new();
    rs_files(&root.join("src"), &mut files);
    rs_files(&root.join("crates"), &mut files);
    let mut found = Vec::new();
    for file in files {
        if file.ends_with("obs/src/registry.rs") {
            continue;
        }
        let text = std::fs::read_to_string(&file).expect("read source file");
        for (lineno, line) in text.lines().enumerate() {
            let trimmed = line.trim_start();
            if trimmed.starts_with("//") {
                continue;
            }
            let mut lits = Vec::new();
            string_literals(line, &mut lits);
            for lit in lits {
                found.push((lit, format!("{}:{}", file.display(), lineno + 1)));
            }
        }
    }
    assert!(!found.is_empty(), "source scan found no string literals — wrong root?");
    found
}

#[test]
fn every_emitted_metric_name_is_registered() {
    let mut undeclared: Vec<String> = scan_sources()
        .into_iter()
        .filter(|(lit, _)| looks_like_metric(lit) && registry::lookup(lit).is_none())
        .map(|(lit, at)| format!("  {lit:?} at {at}"))
        .collect();
    undeclared.dedup();
    assert!(
        undeclared.is_empty(),
        "metric-shaped literals missing from gogreen_obs::registry::ALL \
         (declare them with kind, invariance and a doc line):\n{}",
        undeclared.join("\n")
    );
}

#[test]
fn every_registered_name_is_emitted_somewhere() {
    let literals: std::collections::BTreeSet<String> =
        scan_sources().into_iter().map(|(lit, _)| lit).collect();
    let dead: Vec<&str> = registry::ALL
        .iter()
        .filter(|def| !literals.contains(def.name))
        .map(|def| def.name)
        .collect();
    assert!(
        dead.is_empty(),
        "registry entries never referenced outside the registry (remove or emit them): {dead:?}"
    );
}

#[test]
fn invariance_flags_flow_through_the_metrics_api() {
    // `is_thread_invariant` must answer from the registry, not from a
    // hard-coded prefix list: spot-check one of each class plus a span.
    use gogreen::obs::metrics::is_thread_invariant;
    assert!(is_thread_invariant("mine.tuple_touches"));
    assert!(is_thread_invariant("storage.spill_record_bytes"));
    assert!(!is_thread_invariant("cover.run_len"));
    assert!(!is_thread_invariant("mine"), "spans carry wall time; never invariant");
}
