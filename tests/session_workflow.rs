//! Cross-crate session workflows: the interactive loop the paper's
//! introduction motivates, exercised over every engine, with constraint
//! tightening/relaxing, the shared store, and incremental updates.

use gogreen::core::incremental::IncrementalMiner;
use gogreen::core::session::{Engine, MiningSession, RunMode};
use gogreen::core::store::PatternStore;
use gogreen::prelude::*;
use gogreen_constraints::{Constraint, ConstraintSet};
use gogreen_datagen::{DatasetPreset, PresetKind, RegimeGenerator};
use gogreen_miners::mine_apriori;

fn small_db() -> TransactionDb {
    RegimeGenerator {
        num_transactions: 1_500,
        positions: 10,
        values_per_position: 40,
        num_regimes: 5,
        adherence: 0.85,
        adherence_lo: 0.2,
        ..RegimeGenerator::default()
    }
    .generate()
}

#[test]
fn long_session_matches_oracle_on_every_engine() {
    let db = small_db();
    // A realistic meandering session: relax, relax, tighten, revisit.
    let script = [8.0, 5.0, 3.0, 6.0, 3.0, 2.0];
    for engine in [Engine::HMine, Engine::FpTree, Engine::TreeProjection, Engine::Naive] {
        let mut session = MiningSession::new(db.clone()).with_engine(engine);
        for pct in script {
            let got = session.run(ConstraintSet::support_only(MinSupport::percent(pct)));
            let want = mine_apriori(&db, MinSupport::percent(pct));
            assert!(
                got.same_patterns_as(&want),
                "{engine:?} @ {pct}%: {} vs {}",
                got.len(),
                want.len()
            );
        }
    }
}

#[test]
fn session_dispatch_modes_follow_the_paper() {
    let db = small_db();
    let mut session = MiningSession::new(db);
    let cs = |p: f64| ConstraintSet::support_only(MinSupport::percent(p));
    let modes: Vec<RunMode> = [5.0, 3.0, 3.0, 7.0, 2.0]
        .into_iter()
        .map(|p| session.run_with_report(cs(p)).1.mode)
        .collect();
    assert_eq!(
        modes,
        vec![
            RunMode::Fresh,    // first query
            RunMode::Recycled, // 5% → 3% relaxation
            RunMode::Cached,   // repeat
            RunMode::Filtered, // 3% → 7% tightening
            RunMode::Recycled, // 7% → 2% relaxation
        ]
    );
}

#[test]
fn constrained_session_relaxation_is_exact() {
    let db = small_db();
    let mut session = MiningSession::new(db.clone());
    let base = ConstraintSet::support_only(MinSupport::percent(4.0)).with(Constraint::MinLength(2));
    session.run(base);
    let relaxed =
        ConstraintSet::support_only(MinSupport::percent(2.0)).with(Constraint::MinLength(2));
    let got = session.run(relaxed);
    let want = mine_apriori(&db, MinSupport::percent(2.0)).filter(|p| p.len() >= 2);
    assert!(got.same_patterns_as(&want));
}

#[test]
fn store_backed_recycling_across_users() {
    let db = DatasetPreset::new(PresetKind::Connect4, 0.0005).generate();
    let store = PatternStore::new();
    // User 1 mines and publishes.
    let xi1 = MinSupport::percent(92.0).to_absolute(db.len());
    store.publish("c4", xi1, mine_hmine(&db, MinSupport::Absolute(xi1)));
    // User 2 publishes a richer set.
    let xi2 = MinSupport::percent(88.0).to_absolute(db.len());
    store.publish("c4", xi2, mine_hmine(&db, MinSupport::Absolute(xi2)));
    // User 3 recycles the best available set for a lower threshold.
    let (best_xi, patterns) = store.best_for("c4").expect("two sets published");
    assert_eq!(best_xi, xi2);
    let cdb = Compressor::new(Strategy::Mcp).compress(&db, &patterns);
    let target = MinSupport::percent(84.0);
    let got = RecycleHm.mine(&cdb, target);
    assert!(got.same_patterns_as(&mine_hmine(&db, target)));
}

#[test]
fn incremental_rounds_interleaved_with_updates() {
    let base = small_db();
    let extra = RegimeGenerator {
        num_transactions: 400,
        positions: 10,
        values_per_position: 40,
        num_regimes: 5,
        adherence: 0.85,
        adherence_lo: 0.2,
        seed: 99,
        ..RegimeGenerator::default()
    }
    .generate();
    let mut inc = IncrementalMiner::new(base);
    for (batch, pct) in extra.into_transactions().chunks(100).zip([5.0, 4.0, 3.0, 2.0]) {
        inc.insert(batch.to_vec());
        let got = inc.mine(MinSupport::percent(pct));
        let want = mine_apriori(inc.db(), MinSupport::percent(pct));
        assert!(got.same_patterns_as(&want), "after batch @ {pct}%");
    }
}
