//! Snapshot and profile semantics across the real pipeline:
//!
//! 1. A snapshot delta equals the between-point counter activity — the
//!    same numbers a reset-then-run measurement reports.
//! 2. `MiningSession` emits one labelled snapshot per round through the
//!    exporter hook, and the thread-invariant part of each delta is
//!    bit-identical at `--threads 1` and `--threads 8` (histogram bucket
//!    vectors included).
//! 3. The self-time profile telescopes: summing `self_us` over a root's
//!    subtree reproduces the root's `total_us` exactly, and the
//!    collapsed-stack export carries the same numbers.
//!
//! The metric registries and the exporter slot are process-global, so
//! every test holds `TEST_LOCK` for its whole body.

use gogreen::obs::{histogram, metrics, profile, snapshot, MetricsSnapshot};
use gogreen::prelude::*;
use gogreen_datagen::{DatasetPreset, PresetKind};
use std::sync::{Arc, Mutex};

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn reset_all() {
    metrics::reset();
    histogram::reset();
    drop(snapshot::take_exporter());
}

fn weather_db() -> TransactionDb {
    DatasetPreset::new(PresetKind::Weather, 0.005).generate()
}

#[test]
fn delta_equals_between_point_activity() {
    let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    reset_all();
    metrics::set_enabled(true);
    let db = weather_db();
    let fp = mine_hmine(&db, MinSupport::percent(5.0));

    // Reference: reset, run the workload alone, snapshot the totals.
    let reference = {
        metrics::reset();
        histogram::reset();
        let cdb = Compressor::new(Strategy::Mcp).compress(&db, &fp);
        std::hint::black_box(RecycleHm.mine(&cdb, MinSupport::percent(2.0)));
        MetricsSnapshot::capture()
    };

    // Same workload again without a reset: the delta of two captures
    // must report exactly the same activity, invariant or not.
    let before = MetricsSnapshot::capture();
    let cdb = Compressor::new(Strategy::Mcp).compress(&db, &fp);
    std::hint::black_box(RecycleHm.mine(&cdb, MinSupport::percent(2.0)));
    let delta = MetricsSnapshot::capture().delta_since(&before);
    metrics::set_enabled(false);

    for (name, m) in &reference.metrics {
        if m.kind == metrics::Kind::Counter {
            assert_eq!(delta.value(name), Some(m.value), "counter {name}");
        }
    }
    for (name, h) in &reference.hists {
        assert_eq!(delta.hists.get(name), Some(h), "histogram {name}");
    }
    assert!(delta.value("compress.runs").is_some_and(|v| v > 0));
    assert!(delta.hists.contains_key("mine.projected_db_size"));
    reset_all();
}

/// Runs a two-round session (mine, then relax-and-recycle) with the
/// exporter installed and returns each round's labelled delta.
fn session_round_deltas(db: &TransactionDb, threads: usize) -> Vec<(String, MetricsSnapshot)> {
    reset_all();
    metrics::set_enabled(true);
    let collected: Arc<Mutex<Vec<(String, MetricsSnapshot)>>> = Arc::default();
    let sink = collected.clone();
    snapshot::set_exporter(Box::new(move |label, snap| {
        sink.lock().unwrap().push((label.to_owned(), snap.clone()));
    }));
    let mut session = gogreen::core::session::MiningSession::new(db.clone())
        .with_engine(gogreen::core::session::Engine::FpTree)
        .with_threads(threads);
    session.run(gogreen_constraints::ConstraintSet::support_only(MinSupport::percent(5.0)));
    session.run(gogreen_constraints::ConstraintSet::support_only(MinSupport::percent(2.0)));
    metrics::set_enabled(false);
    reset_all();
    Arc::try_unwrap(collected).expect("exporter dropped").into_inner().unwrap()
}

/// Strips a delta down to its registry-invariant part (thread-variant
/// machine work like `cover.*` legitimately differs across fan-outs).
fn invariant_part(snap: &MetricsSnapshot) -> MetricsSnapshot {
    let mut out = snap.clone();
    out.metrics.retain(|name, _| metrics::is_thread_invariant(name));
    out.hists.retain(|name, _| metrics::is_thread_invariant(name));
    out
}

#[test]
fn session_emits_one_delta_per_round_identical_across_threads() {
    let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let db = weather_db();
    let serial = session_round_deltas(&db, 1);
    let threaded = session_round_deltas(&db, 8);

    let labels: Vec<&str> = serial.iter().map(|(l, _)| l.as_str()).collect();
    assert_eq!(labels, ["session.round/1", "session.round/2"]);
    assert_eq!(threaded.len(), 2);

    // Round 2 recycles, so its delta shows compression activity that
    // round 1's does not — the deltas really are per-round.
    assert_eq!(serial[0].1.value("compress.runs"), None);
    assert!(serial[1].1.value("compress.runs").is_some_and(|v| v > 0));
    assert!(serial[1].1.hists.contains_key("compress.group_size"));

    // Bit-identical invariant deltas at 1 and 8 threads: counters, and
    // full 65-bucket histogram vectors via Histogram's PartialEq.
    for ((l1, s1), (l8, s8)) in serial.iter().zip(threaded.iter()) {
        assert_eq!(l1, l8);
        assert_eq!(invariant_part(s1), invariant_part(s8), "round {l1}");
    }
}

#[test]
fn profile_self_times_telescope_to_root_total() {
    let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    reset_all();
    profile::reset();
    profile::set_enabled(true);
    let db = weather_db();
    let fp = mine_hmine(&db, MinSupport::percent(5.0));
    let cdb = Compressor::new(Strategy::Mcp).compress(&db, &fp);
    std::hint::black_box(RecycleHm.mine(&cdb, MinSupport::percent(2.0)));
    profile::set_enabled(false);

    let nodes = profile::snapshot();
    assert!(!nodes.is_empty(), "profiling recorded nothing");
    let roots: Vec<&str> =
        nodes.iter().map(|(p, _)| p.as_str()).filter(|p| !p.contains(';')).collect();
    assert!(roots.contains(&"compress"), "roots: {roots:?}");
    // Telescoping: every root's subtree self-times sum back to exactly
    // its own total (integer µs — no drift, no double counting).
    for root in &roots {
        let total = profile::get(root).expect("root node").total_us;
        assert_eq!(profile::subtree_self_us(root), total, "root {root}");
    }

    // The collapsed export carries the same self-times: re-summing the
    // "path self_us" lines per root reproduces the totals again.
    let collapsed = profile::to_collapsed();
    for root in &roots {
        let sum: u64 = collapsed
            .lines()
            .map(|line| {
                let (path, self_us) = line.rsplit_once(' ').expect("collapsed line shape");
                let self_us: u64 = self_us.parse().expect("numeric self time");
                (path, self_us)
            })
            .filter(|(p, _)| {
                *p == *root || p.strip_prefix(root).is_some_and(|r| r.starts_with(';'))
            })
            .map(|(_, s)| s)
            .sum();
        assert_eq!(sum, profile::get(root).unwrap().total_us, "collapsed root {root}");
    }
    profile::reset();
    reset_all();
}
