//! Workspace-level randomized tests: exactness of the whole recycling
//! pipeline under randomized databases, thresholds, strategies, session
//! scripts and memory budgets.
//!
//! Cases are generated from a seeded in-repo PRNG (no proptest in
//! hermetic builds); every failure message carries the case seed so a
//! failure replays deterministically.

use gogreen::core::session::{Engine, MiningSession};
use gogreen::core::utility::Strategy;
use gogreen::prelude::*;
use gogreen::storage::{LimitedHMine, LimitedRecycleHm, MemoryBudget};
use gogreen::util::rng::{Rng, SmallRng};
use gogreen_constraints::ConstraintSet;
use gogreen_miners::mine_apriori;
use std::collections::BTreeSet;

/// Random database: 1..28 tuples of 1..9 distinct items over 0..14.
fn random_db(rng: &mut SmallRng) -> TransactionDb {
    let rows = 1 + rng.gen_index(27);
    let mut txs = Vec::with_capacity(rows);
    for _ in 0..rows {
        let len = 1 + rng.gen_index(8);
        let mut set = BTreeSet::new();
        for _ in 0..len {
            set.insert(rng.gen_below(14) as u32);
        }
        txs.push(Transaction::from_ids(set));
    }
    TransactionDb::from_transactions(txs)
}

/// An arbitrary session script (sequence of thresholds, triggering a mix
/// of fresh/cached/filtered/recycled rounds) always matches the oracle,
/// on every engine.
#[test]
fn sessions_are_exact() {
    for case in 0..48u64 {
        let mut rng = SmallRng::seed_from_u64(0x5e55_0000 + case);
        let db = random_db(&mut rng);
        let engine = [Engine::HMine, Engine::FpTree, Engine::TreeProjection, Engine::Naive]
            [rng.gen_index(4)];
        let script_len = 1 + rng.gen_index(4);
        let mut session = MiningSession::new(db.clone()).with_engine(engine);
        for _ in 0..script_len {
            let minsup = 1 + rng.gen_below(6);
            let got = session.run(ConstraintSet::support_only(MinSupport::Absolute(minsup)));
            let want = mine_apriori(&db, MinSupport::Absolute(minsup));
            assert!(got.same_patterns_as(&want), "case {case}: {engine:?} @ {minsup}");
        }
    }
}

/// Memory-limited drivers are exact for any budget, including budgets
/// small enough to force nested spills.
#[test]
fn memory_limited_drivers_are_exact() {
    for case in 0..48u64 {
        let mut rng = SmallRng::seed_from_u64(0x11e1_0000 + case);
        let db = random_db(&mut rng);
        let xi_old = 2 + rng.gen_below(4);
        let xi_new = 1 + rng.gen_below(5);
        let budget = MemoryBudget::bytes(32 + rng.gen_index(4064));
        let want = mine_apriori(&db, MinSupport::Absolute(xi_new));
        let (hm, _) =
            LimitedHMine::new(budget).mine(&db, MinSupport::Absolute(xi_new)).expect("spill i/o");
        assert!(hm.same_patterns_as(&want), "case {case}: H-Mine {} vs {}", hm.len(), want.len());
        let fp_old = mine_apriori(&db, MinSupport::Absolute(xi_old));
        let cdb = Compressor::new(Strategy::Mcp).compress(&db, &fp_old);
        let (rec, _) = LimitedRecycleHm::new(budget)
            .mine(&cdb, MinSupport::Absolute(xi_new))
            .expect("spill i/o");
        assert!(rec.same_patterns_as(&want), "case {case}: HM-MCP {} vs {}", rec.len(), want.len());
    }
}

/// Chained recycling: compress with patterns that themselves came from a
/// recycled run, repeatedly. Errors would compound if any stage were
/// inexact.
#[test]
fn chained_recycling_stays_exact() {
    for case in 0..48u64 {
        let mut rng = SmallRng::seed_from_u64(0xc4a1_0000 + case);
        let db = random_db(&mut rng);
        let mut thresholds: Vec<u64> =
            (0..2 + rng.gen_index(3)).map(|_| 1 + rng.gen_below(6)).collect();
        thresholds.sort_unstable_by(|a, b| b.cmp(a)); // progressively relax
        let mut previous: Option<PatternSet> = None;
        for minsup in thresholds {
            let got = match &previous {
                None => mine_hmine(&db, MinSupport::Absolute(minsup)),
                Some(fp) => {
                    let cdb = Compressor::new(Strategy::Mcp).compress(&db, fp);
                    RecycleHm.mine(&cdb, MinSupport::Absolute(minsup))
                }
            };
            let want = mine_apriori(&db, MinSupport::Absolute(minsup));
            assert!(got.same_patterns_as(&want), "case {case} @ {minsup}");
            previous = Some(got);
        }
    }
}
