//! Workspace-level property tests: exactness of the whole recycling
//! pipeline under randomized databases, thresholds, strategies, session
//! scripts and memory budgets.

use gogreen::core::session::{Engine, MiningSession};
use gogreen::prelude::*;
use gogreen::storage::{LimitedHMine, LimitedRecycleHm, MemoryBudget};
use gogreen_constraints::ConstraintSet;
use gogreen_miners::mine_apriori;
use proptest::prelude::*;
// Explicit imports win over the two glob imports' `Strategy` collision:
// the compression enum stays usable and the proptest trait stays in scope.
use gogreen::core::utility::Strategy;
use proptest::strategy::Strategy as _;

fn db_strategy() -> impl proptest::strategy::Strategy<Value = TransactionDb> {
    prop::collection::vec(prop::collection::btree_set(0u32..14, 1..9), 1..28).prop_map(
        |rows| {
            TransactionDb::from_transactions(
                rows.into_iter()
                    .map(Transaction::from_ids)
                    .collect(),
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// An arbitrary session script (sequence of thresholds, triggering a
    /// mix of fresh/cached/filtered/recycled rounds) always matches the
    /// oracle, on every engine.
    #[test]
    fn sessions_are_exact(
        db in db_strategy(),
        script in prop::collection::vec(1u64..7, 1..5),
        engine_pick in 0usize..4,
    ) {
        let engine = [Engine::HMine, Engine::FpTree, Engine::TreeProjection, Engine::Naive][engine_pick];
        let mut session = MiningSession::new(db.clone()).with_engine(engine);
        for minsup in script {
            let got = session.run(ConstraintSet::support_only(MinSupport::Absolute(minsup)));
            let want = mine_apriori(&db, MinSupport::Absolute(minsup));
            prop_assert!(got.same_patterns_as(&want), "{engine:?} @ {minsup}");
        }
    }

    /// Memory-limited drivers are exact for any budget, including
    /// budgets small enough to force nested spills.
    #[test]
    fn memory_limited_drivers_are_exact(
        db in db_strategy(),
        xi_old in 2u64..6,
        xi_new in 1u64..6,
        budget in 32usize..4096,
    ) {
        let budget = MemoryBudget::bytes(budget);
        let want = mine_apriori(&db, MinSupport::Absolute(xi_new));
        let (hm, _) = LimitedHMine::new(budget)
            .mine(&db, MinSupport::Absolute(xi_new))
            .expect("spill i/o");
        prop_assert!(hm.same_patterns_as(&want), "H-Mine {} vs {}", hm.len(), want.len());
        let fp_old = mine_apriori(&db, MinSupport::Absolute(xi_old));
        let cdb = Compressor::new(Strategy::Mcp).compress(&db, &fp_old);
        let (rec, _) = LimitedRecycleHm::new(budget)
            .mine(&cdb, MinSupport::Absolute(xi_new))
            .expect("spill i/o");
        prop_assert!(rec.same_patterns_as(&want), "HM-MCP {} vs {}", rec.len(), want.len());
    }

    /// Chained recycling: compress with patterns that themselves came
    /// from a recycled run, repeatedly. Errors would compound if any
    /// stage were inexact.
    #[test]
    fn chained_recycling_stays_exact(db in db_strategy(), mut thresholds in prop::collection::vec(1u64..7, 2..5)) {
        thresholds.sort_unstable_by(|a, b| b.cmp(a)); // progressively relax
        let mut previous: Option<PatternSet> = None;
        for minsup in thresholds {
            let got = match &previous {
                None => mine_hmine(&db, MinSupport::Absolute(minsup)),
                Some(fp) => {
                    let cdb = Compressor::new(Strategy::Mcp).compress(&db, fp);
                    RecycleHm.mine(&cdb, MinSupport::Absolute(minsup))
                }
            };
            let want = mine_apriori(&db, MinSupport::Absolute(minsup));
            prop_assert!(got.same_patterns_as(&want));
            previous = Some(got);
        }
    }
}
