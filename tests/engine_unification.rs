//! Differential tests for the unified engines: each algorithm family is
//! written once, generically over `GroupedSource`, and instantiated on
//! two substrates — the degenerate `PlainRanks` view (raw mining) and
//! the real `CompressedRankDb` (recycled mining). This suite pins the
//! unification down three ways per family:
//!
//! 1. the raw miner equals the Apriori oracle;
//! 2. mining an *uncompressed* compressed database (every tuple in the
//!    plain partition, zero groups) emits the **byte-identical stream**
//!    the raw miner emits — the degenerate substrate is a view, not a
//!    different algorithm;
//! 3. MCP- and MLP-compressed databases mine to the oracle set too,
//!    serial and at 4 threads.

use gogreen::core::engine::{engine_named, engines, EngineOpts, VtRepr};
use gogreen::data::FnSink;
use gogreen::prelude::*;
use gogreen::util::pool::Parallelism;

/// The exact emission sequence of one mining run.
type Stream = Vec<(Vec<Item>, u64)>;

fn stream_of(f: &mut dyn FnMut(&mut dyn PatternSink)) -> Stream {
    let mut out: Stream = Vec::new();
    {
        let mut sink = FnSink(|items: &[Item], sup: u64| out.push((items.to_vec(), sup)));
        f(&mut sink);
    }
    out
}

fn as_set(stream: &Stream) -> PatternSet {
    stream.iter().map(|(items, sup)| Pattern::new(items.clone(), *sup)).collect()
}

/// A database with shared prefixes, identical tuples (bare group
/// members), and items that fall in and out of frequency across
/// thresholds.
fn structured_db() -> TransactionDb {
    TransactionDb::from_rows(&[
        &[1, 2, 3, 4],
        &[1, 2, 3, 5],
        &[1, 2, 4, 5],
        &[2, 3, 4, 5],
        &[1, 2, 3],
        &[1, 2, 3],
        &[1, 2],
        &[4, 5],
        &[4, 5, 6],
        &[1, 6],
    ])
}

/// Families with a recycling pair (everything except the Apriori
/// oracle).
fn paired_families() -> Vec<&'static str> {
    engines()
        .iter()
        .filter(|e| e.recycling(Parallelism::serial()).is_some())
        .map(|e| e.key())
        .collect()
}

#[test]
fn registry_pairs_every_family() {
    let keys = paired_families();
    assert_eq!(keys, vec!["hmine", "fp", "tp", "vt", "naive"]);
    assert!(engine_named("apriori").unwrap().recycling(Parallelism::serial()).is_none());
}

/// A dense connect4-style analog: few distinct items, long tuples, heavy
/// overlap — the regime where tidset bitmaps stay word-dense and the
/// vertical engine's chain shortcut and bound pruning matter most. Every
/// family must stay exact and thread-invariant here too.
fn dense_analog_db() -> TransactionDb {
    let mut rows: Vec<Vec<u32>> = Vec::new();
    for i in 0..90u32 {
        // Ten base items, each row dropping two rotating positions plus
        // a sparse tail item: supports cluster near the top like a
        // game-position database.
        let mut r: Vec<u32> =
            (0..10u32).filter(|&x| x != i % 10 && x != (i * 3 + 1) % 10).collect();
        if i % 9 == 0 {
            r.push(10 + i % 4);
        }
        rows.push(r);
    }
    let row_refs: Vec<&[u32]> = rows.iter().map(|r| r.as_slice()).collect();
    TransactionDb::from_rows(&row_refs)
}

#[test]
fn dense_analog_is_exact_for_every_family() {
    use gogreen::core::Compressor;
    let db = dense_analog_db();
    let fp_old = mine_apriori(&db, MinSupport::Absolute(60));
    for key in paired_families() {
        let engine = engine_named(key).unwrap();
        for minsup in [30u64, 50, 70] {
            let ms = MinSupport::Absolute(minsup);
            let oracle = mine_apriori(&db, ms);
            let raw = stream_of(&mut |sink| {
                engine.raw().mine_into_par(&db, ms, Parallelism::serial(), sink)
            });
            assert!(
                as_set(&raw).same_patterns_as(&oracle),
                "{key} raw ξ={minsup}: {} vs oracle {}",
                raw.len(),
                oracle.len()
            );
            for strategy in [Strategy::Mcp, Strategy::Mlp] {
                let cdb = Compressor::new(strategy).compress(&db, &fp_old);
                for threads in [1usize, 4] {
                    let par = Parallelism::threads(threads);
                    let got = stream_of(&mut |sink| {
                        engine.recycling(par).unwrap().mine_into_par(&cdb, ms, par, sink)
                    });
                    assert!(
                        as_set(&got).same_patterns_as(&oracle),
                        "{key} {strategy:?} ξ={minsup} t={threads}"
                    );
                }
            }
        }
    }
}

/// A sparse pumsb-style analog: a wide universe (census categories),
/// short tuples, and a support distribution with a handful of heavy
/// items over a long light tail — the regime where tid-lists beat
/// bitmaps and the adaptive engine switches representations early.
fn sparse_pumsb_analog_db() -> TransactionDb {
    let mut rows: Vec<Vec<u32>> = Vec::new();
    for i in 0..240u32 {
        // Two heavy demographic codes most rows share, one mid-frequency
        // band, and a sparse tail over a 200-item universe.
        let mut r = vec![i % 2, 2 + i % 3];
        r.push(5 + i % 12);
        r.push(17 + (i * 7) % 83);
        if i % 4 == 0 {
            r.push(100 + (i * 13) % 100);
        }
        r.sort_unstable();
        r.dedup();
        rows.push(r);
    }
    let row_refs: Vec<&[u32]> = rows.iter().map(|r| r.as_slice()).collect();
    TransactionDb::from_rows(&row_refs)
}

/// The vertical family under every `--vt-repr` mode: on both the dense
/// connect4-style and sparse pumsb-style analogs, raw and recycled,
/// every forced representation must emit the byte-identical stream the
/// adaptive default emits (which in turn matches the oracle), serial
/// and threaded alike.
#[test]
fn vt_repr_modes_emit_identical_streams() {
    use gogreen::core::Compressor;
    let engine = engine_named("vt").unwrap();
    for (db, xi_old, minsup) in
        [(dense_analog_db(), 60u64, 40u64), (sparse_pumsb_analog_db(), 100, 20)]
    {
        let ms = MinSupport::Absolute(minsup);
        let oracle = mine_apriori(&db, ms);
        let fp_old = mine_apriori(&db, MinSupport::Absolute(xi_old));
        let cdb = Compressor::new(Strategy::Mcp).compress(&db, &fp_old);
        let mut raw_auto: Option<Stream> = None;
        let mut rec_auto: Option<Stream> = None;
        for repr in VtRepr::ALL {
            let opts = EngineOpts { vt_repr: repr };
            for threads in [1usize, 4] {
                let par = Parallelism::threads(threads);
                let raw =
                    stream_of(&mut |sink| engine.raw_with(opts).mine_into_par(&db, ms, par, sink));
                let rec = stream_of(&mut |sink| {
                    engine.recycling_with(par, opts).unwrap().mine_into_par(&cdb, ms, par, sink)
                });
                assert!(
                    as_set(&raw).same_patterns_as(&oracle),
                    "vt --vt-repr {repr} t={threads}: raw diverges from oracle"
                );
                assert_eq!(
                    &raw,
                    raw_auto.get_or_insert_with(|| raw.clone()),
                    "vt --vt-repr {repr} t={threads}: raw stream differs from auto"
                );
                assert_eq!(
                    &rec,
                    rec_auto.get_or_insert_with(|| rec.clone()),
                    "vt --vt-repr {repr} t={threads}: recycled stream differs from auto"
                );
            }
        }
    }
}

#[test]
fn raw_and_degenerate_grouped_streams_are_identical() {
    for db in [TransactionDb::paper_example(), structured_db()] {
        let cdb = CompressedDb::uncompressed(&db);
        for key in paired_families() {
            let engine = engine_named(key).unwrap();
            for minsup in [1, 2, 3] {
                let ms = MinSupport::Absolute(minsup);
                for threads in [1usize, 4] {
                    let par = Parallelism::threads(threads);
                    let raw = stream_of(&mut |sink| engine.raw().mine_into_par(&db, ms, par, sink));
                    let grouped = stream_of(&mut |sink| {
                        engine.recycling(par).unwrap().mine_into_par(&cdb, ms, par, sink)
                    });
                    assert_eq!(
                        raw, grouped,
                        "{key} ξ={minsup} t={threads}: raw and degenerate streams differ"
                    );
                    let oracle = mine_apriori(&db, ms);
                    assert!(
                        as_set(&raw).same_patterns_as(&oracle),
                        "{key} ξ={minsup} t={threads}: raw diverges from oracle"
                    );
                }
            }
        }
    }
}

#[test]
fn compressed_mining_matches_oracle_for_both_strategies() {
    use gogreen::core::Compressor;
    for db in [TransactionDb::paper_example(), structured_db()] {
        for strategy in [Strategy::Mcp, Strategy::Mlp] {
            for xi_old in [3u64, 4] {
                let fp_old = mine_apriori(&db, MinSupport::Absolute(xi_old));
                let cdb = Compressor::new(strategy).compress(&db, &fp_old);
                for key in paired_families() {
                    let engine = engine_named(key).unwrap();
                    for minsup in [1u64, 2, 3] {
                        let ms = MinSupport::Absolute(minsup);
                        let oracle = mine_apriori(&db, ms);
                        for threads in [1usize, 4] {
                            let par = Parallelism::threads(threads);
                            let got = stream_of(&mut |sink| {
                                engine.recycling(par).unwrap().mine_into_par(&cdb, ms, par, sink)
                            });
                            assert!(
                                as_set(&got).same_patterns_as(&oracle),
                                "{key} {strategy:?} ξ_old={xi_old} ξ={minsup} t={threads}: \
                                 {} vs oracle {}",
                                got.len(),
                                oracle.len()
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn recycled_streams_are_thread_invariant() {
    use gogreen::core::Compressor;
    let db = structured_db();
    let fp_old = mine_apriori(&db, MinSupport::Absolute(3));
    let cdb = Compressor::new(Strategy::Mcp).compress(&db, &fp_old);
    for key in paired_families() {
        let engine = engine_named(key).unwrap();
        let ms = MinSupport::Absolute(2);
        let serial = stream_of(&mut |sink| {
            engine.recycling(Parallelism::serial()).unwrap().mine_into_par(
                &cdb,
                ms,
                Parallelism::serial(),
                sink,
            )
        });
        for threads in [2usize, 4] {
            let par = Parallelism::threads(threads);
            let threaded = stream_of(&mut |sink| {
                engine.recycling(par).unwrap().mine_into_par(&cdb, ms, par, sink)
            });
            assert_eq!(serial, threaded, "{key} t={threads}: stream not byte-identical");
        }
    }
}
