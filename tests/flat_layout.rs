//! Differential suite for the flat (CSR + arena) datapath: the memory
//! layout is an implementation detail, so every miner must emit a
//! *byte-identical* pattern stream over every substrate view — raw,
//! MCP-compressed, MLP-compressed — at any thread count, and the
//! `mine.*` / `alloc.*` counters must be bit-identical between thread
//! counts. The spill codec's CSR group records must survive an
//! encode/decode round-trip and fail loudly on corrupt bytes.
//!
//! The metrics registry is process-global, so metric tests hold
//! `TEST_LOCK` for their whole body.

use gogreen::data::FnSink;
use gogreen::miners::{FpGrowth, HMine, TreeProjection};
use gogreen::obs::metrics;
use gogreen::prelude::*;
use gogreen::storage::codec::{ByteReader, DecodeError, SpillRecord};
use gogreen::util::pool::Parallelism;
use gogreen_datagen::{DatasetPreset, PresetKind};
use std::sync::Mutex;

static TEST_LOCK: Mutex<()> = Mutex::new(());

const XI_NEW: MinSupport = MinSupport::Relative(0.02);

/// Raw database plus one compressed view per strategy family.
fn substrates() -> (TransactionDb, CompressedDb, CompressedDb) {
    let preset = DatasetPreset::new(PresetKind::Weather, 0.005);
    let db = preset.generate();
    let fp = mine_hmine(&db, preset.xi_old());
    let mcp = Compressor::new(Strategy::Mcp).compress(&db, &fp);
    let mlp = Compressor::new(Strategy::Mlp).compress(&db, &fp);
    (db, mcp, mlp)
}

type Stream = Vec<(Vec<Item>, u64)>;

fn stream_of(f: &mut dyn FnMut(&mut dyn PatternSink)) -> Stream {
    let mut out: Stream = Vec::new();
    {
        let mut sink = FnSink(|items: &[Item], sup: u64| out.push((items.to_vec(), sup)));
        f(&mut sink);
    }
    out
}

/// All 7 miners, every substrate each supports, threads 1 vs 4: the
/// stream must not move by a byte.
#[test]
fn all_miners_identical_on_every_substrate() {
    let (db, mcp, mlp) = substrates();
    let raw = CompressedDb::uncompressed(&db);

    let baselines: Vec<Box<dyn Miner>> =
        vec![Box::new(HMine), Box::new(FpGrowth), Box::new(TreeProjection)];
    for m in &baselines {
        let serial =
            stream_of(&mut |sink| m.mine_into_par(&db, XI_NEW, Parallelism::serial(), sink));
        let par =
            stream_of(&mut |sink| m.mine_into_par(&db, XI_NEW, Parallelism::threads(4), sink));
        assert!(!serial.is_empty(), "{}: serial run emitted nothing", m.name());
        assert!(serial == par, "{}: stream diverged at 4 threads", m.name());
    }

    let recyclers: Vec<Box<dyn RecyclingMiner>> = vec![
        Box::new(RecycleHm),
        Box::new(RecycleFp::default()),
        Box::new(RecycleTp),
        Box::new(RpMine::default()),
    ];
    for m in &recyclers {
        let mut oracle: Option<PatternSet> = None;
        for (label, view) in [("raw", &raw), ("MCP", &mcp), ("MLP", &mlp)] {
            let serial =
                stream_of(&mut |sink| m.mine_into_par(view, XI_NEW, Parallelism::serial(), sink));
            let par =
                stream_of(&mut |sink| m.mine_into_par(view, XI_NEW, Parallelism::threads(4), sink));
            assert!(!serial.is_empty(), "{} on {label}: serial run emitted nothing", m.name());
            assert!(serial == par, "{} on {label}: stream diverged at 4 threads", m.name());
            // Substrates may reorder the stream but never change the set.
            let set: PatternSet =
                serial.iter().map(|(items, sup)| Pattern::new(items.clone(), *sup)).collect();
            match &oracle {
                None => oracle = Some(set),
                Some(o) => {
                    assert!(set.same_patterns_as(o), "{} on {label}: pattern set moved", m.name())
                }
            }
        }
    }
}

/// Runs every miner once at `threads`; returns all `mine.*` and
/// `alloc.*` totals.
fn counters(db: &TransactionDb, cdb: &CompressedDb, threads: usize) -> Vec<(&'static str, u64)> {
    let par = Parallelism::threads(threads);
    metrics::reset();
    metrics::set_enabled(true);
    let mut sink = FnSink(|_: &[Item], _: u64| {});
    for m in [&HMine as &dyn Miner, &FpGrowth, &TreeProjection] {
        m.mine_into_par(db, XI_NEW, par, &mut sink);
    }
    let recyclers: [&dyn RecyclingMiner; 4] =
        [&RecycleHm, &RecycleFp::default(), &RecycleTp, &RpMine::default()];
    for m in recyclers {
        m.mine_into_par(cdb, XI_NEW, par, &mut sink);
    }
    metrics::set_enabled(false);
    let snap: Vec<(&'static str, u64)> = metrics::snapshot()
        .into_iter()
        .filter(|(name, _)| name.starts_with("mine.") || name.starts_with("alloc."))
        .map(|(name, m)| (name, m.value))
        .collect();
    metrics::reset();
    snap
}

/// The arena accounting counts *used* bytes per projection, so worker
/// count cannot move `alloc.*` — and `mine.*` stays bit-identical as
/// before the flat layout.
#[test]
fn alloc_and_mine_counters_thread_invariant() {
    let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (db, mcp, _) = substrates();
    let serial = counters(&db, &mcp, 1);
    let threaded = counters(&db, &mcp, 4);
    for required in ["alloc.projection_bytes", "alloc.arena_reuses", "mine.candidate_tests"] {
        assert!(metrics::is_thread_invariant(required));
        assert!(
            serial.iter().any(|&(n, v)| n == required && v > 0),
            "counter {required} missing from {serial:?}"
        );
    }
    assert_eq!(serial, threaded);
}

/// The database's CSR storage is faithful: rows come back exactly as
/// pushed, via both the row iterator and the borrowed window.
#[test]
fn csr_storage_round_trips_tuples() {
    let db = TransactionDb::paper_example();
    let rows: Vec<Vec<Item>> = db.iter().map(|t| t.to_vec()).collect();
    assert_eq!(rows.len(), db.len());
    let view = db.tuples();
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(db.tuple(i), row.as_slice());
        assert_eq!(view.row(i), row.as_slice());
    }
    assert_eq!(view.flat().len(), rows.iter().map(Vec::len).sum::<usize>());
}

fn csr(rows: &[&[u32]]) -> CsrTuples<u32> {
    let mut c = CsrTuples::new();
    for r in rows {
        c.push_row(r);
    }
    c
}

/// Spill records with CSR outlier slabs survive an encode/decode
/// round-trip in a mixed stream.
#[test]
fn spill_codec_round_trips_csr_groups() {
    let records = vec![
        SpillRecord::Plain(vec![1, 4, 9]),
        SpillRecord::Group { pattern: vec![2, 5], bare: 3, outliers: csr(&[&[6], &[7, 8]]) },
        SpillRecord::Group { pattern: vec![0], bare: 0, outliers: CsrTuples::new() },
        SpillRecord::Plain(vec![0]),
    ];
    let mut buf = Vec::new();
    for r in &records {
        r.encode(&mut buf);
    }
    let mut reader = ByteReader::new(&buf);
    let mut back = Vec::new();
    while let Some(r) = SpillRecord::decode(&mut reader).expect("clean buffer decodes") {
        back.push(r);
    }
    assert_eq!(back, records);
}

/// Corruption surfaces as a structured error, never a panic or a
/// silently wrong record: bad tags, and truncation at every byte.
#[test]
fn spill_codec_rejects_corruption() {
    let mut buf = Vec::new();
    SpillRecord::Group { pattern: vec![3], bare: 2, outliers: csr(&[&[5, 6], &[7]]) }
        .encode(&mut buf);
    // Every proper prefix is a truncation error.
    for cut in 1..buf.len() {
        let mut b = ByteReader::new(&buf[..cut]);
        let got = SpillRecord::decode(&mut b);
        assert!(matches!(got, Err(DecodeError::Truncated { .. })), "cut={cut}: {got:?}");
    }
    // A flipped tag byte is a BadTag at its offset.
    let mut bad = buf.clone();
    bad[0] = 0xEE;
    let mut b = ByteReader::new(&bad);
    assert_eq!(SpillRecord::decode(&mut b), Err(DecodeError::BadTag { offset: 0, tag: 0xEE }));
}
