//! Differential test for the out-of-core datapath: a
//! [`SegmentedIncrementalMiner`] fed the same update rounds as the
//! in-memory [`IncrementalMiner`] must emit **byte-identical** pattern
//! files every round, at `--threads 1` and `--threads 4` alike, and its
//! thread-invariant counters must be bit-identical across thread counts.
//!
//! The metrics registry is process-global; each integration-test file is
//! its own process, and the counter-sensitive assertions hold
//! `TEST_LOCK` for their whole body.

use gogreen::core::incremental::IncrementalMiner;
use gogreen::obs::{histogram, metrics};
use gogreen::storage::SegmentedIncrementalMiner;
use gogreen_data::pattern_io::write_patterns_file;
use gogreen_data::{MinSupport, PatternSet, Transaction, TransactionDb};
use gogreen_datagen::{DatasetPreset, PresetKind};
use gogreen_util::pool::Parallelism;
use std::path::PathBuf;
use std::sync::Mutex;

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gogreen-oocdiff-{tag}-{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    dir
}

/// Three update batches of the weather analog, as raw sorted rows.
fn update_rounds() -> Vec<Vec<Vec<u32>>> {
    let db = DatasetPreset::new(PresetKind::Weather, 0.002).generate();
    let rows: Vec<Vec<u32>> = db.iter().map(|t| t.iter().map(|i| i.id()).collect()).collect();
    let third = rows.len() / 3;
    vec![rows[..third].to_vec(), rows[third..2 * third].to_vec(), rows[2 * third..].to_vec()]
}

fn pattern_bytes(patterns: &PatternSet, tag: &str) -> Vec<u8> {
    let path =
        std::env::temp_dir().join(format!("gogreen-oocdiff-fp-{tag}-{}", std::process::id()));
    write_patterns_file(patterns, path.display().to_string()).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    bytes
}

/// Runs the segmented miner over the rounds at `threads`, returning the
/// per-round pattern file bytes and the final invariant counter totals.
fn segmented_rounds(
    threads: usize,
    rounds: &[Vec<Vec<u32>>],
) -> (Vec<Vec<u8>>, Vec<(&'static str, u64)>) {
    let dir = temp_dir(&format!("t{threads}"));
    metrics::reset();
    histogram::reset();
    metrics::set_enabled(true);
    let mut miner = SegmentedIncrementalMiner::create(&dir, 2048)
        .unwrap()
        .with_parallelism(Parallelism::threads(threads));
    let mut out = Vec::new();
    for (round, batch) in rounds.iter().enumerate() {
        miner.insert(batch.iter()).unwrap();
        let patterns = miner.mine(MinSupport::percent(5.0)).unwrap();
        out.push(pattern_bytes(&patterns, &format!("t{threads}-r{round}")));
    }
    metrics::set_enabled(false);
    let snap: Vec<(&'static str, u64)> = metrics::snapshot()
        .into_iter()
        .filter(|(name, _)| metrics::is_thread_invariant(name))
        .map(|(name, m)| (name, m.value))
        .collect();
    metrics::reset();
    std::fs::remove_dir_all(&dir).unwrap();
    (out, snap)
}

#[test]
fn segmented_rounds_match_in_memory_rounds_byte_for_byte() {
    let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let rounds = update_rounds();

    // In-memory reference: same batches through the core incremental
    // miner.
    let mut reference = IncrementalMiner::new(TransactionDb::new());
    let mut expected: Vec<Vec<u8>> = Vec::new();
    for (round, batch) in rounds.iter().enumerate() {
        reference.insert(batch.iter().map(|r| Transaction::from_ids(r.iter().copied())));
        let patterns = reference.mine(MinSupport::percent(5.0));
        assert!(!patterns.is_empty(), "round {round} mined nothing");
        expected.push(pattern_bytes(&patterns, &format!("mem-r{round}")));
    }

    let (serial, counters_serial) = segmented_rounds(1, &rounds);
    let (threaded, counters_threaded) = segmented_rounds(4, &rounds);

    assert_eq!(serial, expected, "serial out-of-core rounds diverge from in-memory");
    assert_eq!(threaded, expected, "threaded out-of-core rounds diverge from in-memory");

    // The declared storage counters actually fired…
    for required in ["storage.segments_written", "storage.segments_read", "mine.candidate_tests"] {
        assert!(
            counters_serial.iter().any(|&(n, v)| n == required && v > 0),
            "counter {required} missing from {counters_serial:?}"
        );
    }
    // …and parallelism changed none of the invariant ones.
    assert_eq!(counters_serial, counters_threaded);
}
