//! End-to-end pipeline tests over all four dataset analogs: generate,
//! mine at ξ_old, compress with both strategies, and verify every
//! recycling miner against every baseline at a relaxed ξ_new.

use gogreen::prelude::*;
use gogreen_datagen::{DatasetPreset, PresetKind};

const TINY: f64 = 0.0005; // 2,000-tuple floor for every preset

fn check_preset(kind: PresetKind) {
    let preset = DatasetPreset::new(kind, TINY);
    let db = preset.generate();
    let xi_old = preset.xi_old();
    let xi_new = preset.sweep()[1];

    let fp_old = mine_hmine(&db, xi_old);
    assert!(!fp_old.is_empty(), "{}: nothing to recycle at ξ_old", preset.name());

    let reference = mine_fpgrowth(&db, xi_new);
    assert!(mine_hmine(&db, xi_new).same_patterns_as(&reference));
    assert!(mine_treeproj(&db, xi_new).same_patterns_as(&reference));

    for strategy in [Strategy::Mcp, Strategy::Mlp] {
        let cdb = Compressor::new(strategy).compress(&db, &fp_old);
        let stats = cdb.stats();
        assert_eq!(stats.num_tuples, db.len(), "{}", preset.name());
        assert!(stats.ratio() <= 1.0);
        let recyclers: Vec<(&str, PatternSet)> = vec![
            ("RP-Mine", RpMine::default().mine(&cdb, xi_new)),
            ("Recycle-HM", RecycleHm.mine(&cdb, xi_new)),
            ("FP-recycle", RecycleFp::default().mine(&cdb, xi_new)),
            ("TP-recycle", RecycleTp.mine(&cdb, xi_new)),
        ];
        for (name, got) in recyclers {
            assert!(
                got.same_patterns_as(&reference),
                "{}/{strategy:?}/{name}: {} vs {} patterns",
                preset.name(),
                got.len(),
                reference.len()
            );
        }
    }
}

#[test]
fn weather_pipeline() {
    check_preset(PresetKind::Weather);
}

#[test]
fn forest_pipeline() {
    check_preset(PresetKind::Forest);
}

#[test]
fn connect4_pipeline() {
    check_preset(PresetKind::Connect4);
}

#[test]
fn pumsb_pipeline() {
    check_preset(PresetKind::Pumsb);
}

/// The compressed databases must actually compress on the dense analogs
/// (otherwise the figures measure nothing).
#[test]
fn dense_presets_compress_meaningfully() {
    for kind in [PresetKind::Connect4, PresetKind::Pumsb] {
        let preset = DatasetPreset::new(kind, TINY);
        let db = preset.generate();
        let fp_old = mine_hmine(&db, preset.xi_old());
        let cdb = Compressor::new(Strategy::Mcp).compress(&db, &fp_old);
        let stats = cdb.stats();
        assert!(
            stats.covered_tuples * 2 > stats.num_tuples,
            "{}: only {}/{} tuples covered",
            preset.name(),
            stats.covered_tuples,
            stats.num_tuples
        );
        assert!(stats.ratio() < 0.98, "{}: ratio {}", preset.name(), stats.ratio());
    }
}

/// Recycling with a *stale* pattern set (mined at a different threshold
/// than advertised, or from a different preset entirely) must still be
/// exact — compression correctness never depends on the pattern set.
#[test]
fn foreign_pattern_sets_are_safe() {
    let a = DatasetPreset::new(PresetKind::Connect4, TINY).generate();
    let b = DatasetPreset::new(PresetKind::Pumsb, TINY).generate();
    let fp_from_b = mine_hmine(&b, MinSupport::percent(90.0));
    let cdb = Compressor::new(Strategy::Mcp).compress(&a, &fp_from_b);
    let xi = MinSupport::percent(90.0);
    let got = RecycleHm.mine(&cdb, xi);
    let want = mine_hmine(&a, xi);
    assert!(got.same_patterns_as(&want));
}
