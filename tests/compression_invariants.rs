//! Structural invariants of compression, independent of any miner:
//! losslessness, group well-formedness, coverage accounting, and the
//! semantics of the Figure 1 selection rule.

use gogreen::prelude::*;
use gogreen_miners::mine_apriori;
use proptest::prelude::*;
// Explicit imports win over the two glob imports' `Strategy` collision:
// the compression enum stays usable and the proptest trait stays in scope.
use gogreen::core::utility::Strategy;
use proptest::strategy::Strategy as _;

fn db_strategy() -> impl proptest::strategy::Strategy<Value = TransactionDb> {
    prop::collection::vec(prop::collection::btree_set(0u32..16, 1..10), 1..32).prop_map(
        |rows| {
            TransactionDb::from_transactions(
                rows.into_iter()
                    .map(Transaction::from_ids)
                    .collect(),
            )
        },
    )
}

fn all_strategies() -> [Strategy; 4] {
    [Strategy::Mcp, Strategy::Mlp, Strategy::SupportOnly, Strategy::LengthOnly]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Groups are well-formed: non-empty sorted patterns, outliers
    /// disjoint from the pattern, coverage + plain = |DB|, ratio ≤ 1.
    #[test]
    fn group_invariants(db in db_strategy(), xi_old in 1u64..6, pick in 0usize..4) {
        let fp = mine_apriori(&db, MinSupport::Absolute(xi_old));
        let cdb = Compressor::new(all_strategies()[pick]).compress(&db, &fp);
        let stats = cdb.stats();
        prop_assert_eq!(stats.num_tuples, db.len());
        prop_assert_eq!(
            stats.covered_tuples + cdb.plain().len(),
            db.len()
        );
        prop_assert!(stats.ratio() <= 1.0 + 1e-12);
        for g in cdb.groups() {
            prop_assert!(!g.pattern().is_empty());
            prop_assert!(g.pattern().windows(2).all(|w| w[0] < w[1]));
            prop_assert!(g.count() > 0);
            for o in g.outliers() {
                prop_assert!(!o.is_empty());
                prop_assert!(o.windows(2).all(|w| w[0] < w[1]));
                for it in o.iter() {
                    prop_assert!(g.pattern().binary_search(it).is_err());
                }
            }
        }
    }

    /// Reconstruction returns the original multiset for every strategy.
    #[test]
    fn lossless_for_every_strategy(db in db_strategy(), xi_old in 1u64..6, pick in 0usize..4) {
        let fp = mine_apriori(&db, MinSupport::Absolute(xi_old));
        let cdb = Compressor::new(all_strategies()[pick]).compress(&db, &fp);
        let mut a = cdb.reconstruct().into_transactions();
        let mut b: Vec<Transaction> = db.iter().cloned().collect();
        a.sort_by(|x, y| x.items().cmp(y.items()));
        b.sort_by(|x, y| x.items().cmp(y.items()));
        prop_assert_eq!(a, b);
    }

    /// Figure 1 semantics: every group pattern is contained in every
    /// reconstructed member, and every *plain* tuple contains no pattern
    /// from the recycled set (otherwise it would have been covered).
    #[test]
    fn selection_rule_semantics(db in db_strategy(), xi_old in 1u64..6) {
        let fp = mine_apriori(&db, MinSupport::Absolute(xi_old));
        let cdb = Compressor::new(Strategy::Mcp).compress(&db, &fp);
        for t in cdb.plain() {
            for p in fp.iter() {
                prop_assert!(
                    !t.contains_all(p.items()),
                    "plain tuple {t} contains recycled pattern {p}"
                );
            }
        }
    }

    /// The compressed F-list equals the plain F-list (counting through
    /// groups is exact).
    #[test]
    fn compressed_counting_is_exact(db in db_strategy(), xi_old in 1u64..6, xi_new in 1u64..6) {
        let fp = mine_apriori(&db, MinSupport::Absolute(xi_old));
        let cdb = Compressor::new(Strategy::Mcp).compress(&db, &fp);
        let a = cdb.flist(xi_new);
        let b = FList::from_db(&db, xi_new);
        prop_assert_eq!(a, b);
    }

    /// MCP picks, for each covered tuple, a pattern whose MCP utility is
    /// maximal among the recycled patterns the tuple contains.
    #[test]
    fn mcp_picks_max_utility(db in db_strategy(), xi_old in 1u64..6) {
        let fp = mine_apriori(&db, MinSupport::Absolute(xi_old));
        let cdb = Compressor::new(Strategy::Mcp).compress(&db, &fp);
        for g in cdb.groups() {
            let pattern_sup = fp.support_of(g.pattern()).expect("group pattern from FP");
            let g_utility = Strategy::Mcp.utility(g.pattern().len(), pattern_sup, db.len());
            // Reconstruct one member and check no better pattern matched.
            let member = match g.outliers().first() {
                Some(o) => {
                    let mut items = g.pattern().to_vec();
                    items.extend_from_slice(o);
                    Transaction::new(items)
                }
                None => Transaction::new(g.pattern().to_vec()),
            };
            for p in fp.iter() {
                if member.contains_all(p.items()) {
                    let u = Strategy::Mcp.utility(p.len(), p.support(), db.len());
                    prop_assert!(
                        u <= g_utility,
                        "pattern {p} (U={u}) beats group {:?} (U={g_utility})",
                        g.pattern()
                    );
                }
            }
        }
    }
}
