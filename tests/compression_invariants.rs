//! Structural invariants of compression, independent of any miner:
//! losslessness, group well-formedness, coverage accounting, and the
//! semantics of the Figure 1 selection rule — over seeded random
//! databases.

use gogreen::core::utility::Strategy;
use gogreen::prelude::*;
use gogreen::util::rng::{Rng, SmallRng};
use gogreen_miners::mine_apriori;
use std::collections::BTreeSet;

/// Random database: 1..32 tuples of 1..10 distinct items over 0..16.
fn random_db(rng: &mut SmallRng) -> TransactionDb {
    let rows = 1 + rng.gen_index(31);
    let mut txs = Vec::with_capacity(rows);
    for _ in 0..rows {
        let len = 1 + rng.gen_index(9);
        let mut set = BTreeSet::new();
        for _ in 0..len {
            set.insert(rng.gen_below(16) as u32);
        }
        txs.push(Transaction::from_ids(set));
    }
    TransactionDb::from_transactions(txs)
}

fn all_strategies() -> [Strategy; 4] {
    [Strategy::Mcp, Strategy::Mlp, Strategy::SupportOnly, Strategy::LengthOnly]
}

/// Groups are well-formed: non-empty sorted patterns, outliers disjoint
/// from the pattern, coverage + plain = |DB|, ratio ≤ 1.
#[test]
fn group_invariants() {
    for case in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(0x6001_0000 + case);
        let db = random_db(&mut rng);
        let xi_old = 1 + rng.gen_below(5);
        let strategy = all_strategies()[rng.gen_index(4)];
        let fp = mine_apriori(&db, MinSupport::Absolute(xi_old));
        let cdb = Compressor::new(strategy).compress(&db, &fp);
        let stats = cdb.stats();
        assert_eq!(stats.num_tuples, db.len(), "case {case}");
        assert_eq!(stats.covered_tuples + cdb.plain().len(), db.len(), "case {case}");
        assert!(stats.ratio() <= 1.0 + 1e-12, "case {case}");
        for g in cdb.groups() {
            assert!(!g.pattern().is_empty(), "case {case}");
            assert!(g.pattern().windows(2).all(|w| w[0] < w[1]), "case {case}");
            assert!(g.count() > 0, "case {case}");
            for o in g.outliers() {
                assert!(!o.is_empty(), "case {case}");
                assert!(o.windows(2).all(|w| w[0] < w[1]), "case {case}");
                for it in o.iter() {
                    assert!(g.pattern().binary_search(it).is_err(), "case {case}");
                }
            }
        }
    }
}

/// Reconstruction returns the original multiset for every strategy.
#[test]
fn lossless_for_every_strategy() {
    for case in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(0x1055_0000 + case);
        let db = random_db(&mut rng);
        let xi_old = 1 + rng.gen_below(5);
        let strategy = all_strategies()[rng.gen_index(4)];
        let fp = mine_apriori(&db, MinSupport::Absolute(xi_old));
        let cdb = Compressor::new(strategy).compress(&db, &fp);
        let rebuilt = cdb.reconstruct();
        let mut a: Vec<_> = rebuilt.iter().map(|t| t.to_vec()).collect();
        let mut b: Vec<_> = db.iter().map(|t| t.to_vec()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "case {case} ({strategy:?})");
    }
}

/// Figure 1 semantics: every *plain* tuple contains no pattern from the
/// recycled set (otherwise it would have been covered).
#[test]
fn selection_rule_semantics() {
    for case in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(0x5e1e_0000 + case);
        let db = random_db(&mut rng);
        let xi_old = 1 + rng.gen_below(5);
        let fp = mine_apriori(&db, MinSupport::Absolute(xi_old));
        let cdb = Compressor::new(Strategy::Mcp).compress(&db, &fp);
        for t in cdb.plain() {
            for p in fp.iter() {
                assert!(
                    !contains_all(t, p.items()),
                    "case {case}: plain tuple {t:?} contains recycled pattern {p}"
                );
            }
        }
    }
}

/// The compressed F-list equals the plain F-list (counting through
/// groups is exact).
#[test]
fn compressed_counting_is_exact() {
    for case in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(0xc000_0000 + case);
        let db = random_db(&mut rng);
        let xi_old = 1 + rng.gen_below(5);
        let xi_new = 1 + rng.gen_below(5);
        let fp = mine_apriori(&db, MinSupport::Absolute(xi_old));
        let cdb = Compressor::new(Strategy::Mcp).compress(&db, &fp);
        let a = cdb.flist(xi_new);
        let b = FList::from_db(&db, xi_new);
        assert_eq!(a, b, "case {case}");
    }
}

/// MCP picks, for each covered tuple, a pattern whose MCP utility is
/// maximal among the recycled patterns the tuple contains.
#[test]
fn mcp_picks_max_utility() {
    for case in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(0x3c90_0000 + case);
        let db = random_db(&mut rng);
        let xi_old = 1 + rng.gen_below(5);
        let fp = mine_apriori(&db, MinSupport::Absolute(xi_old));
        let cdb = Compressor::new(Strategy::Mcp).compress(&db, &fp);
        for g in cdb.groups() {
            let pattern_sup = fp.support_of(g.pattern()).expect("group pattern from FP");
            let g_utility = Strategy::Mcp.utility(g.pattern().len(), pattern_sup, db.len());
            // Reconstruct one member and check no better pattern matched.
            let member = match g.outliers().iter().next() {
                Some(o) => {
                    let mut items = g.pattern().to_vec();
                    items.extend_from_slice(o);
                    Transaction::new(items)
                }
                None => Transaction::new(g.pattern().to_vec()),
            };
            for p in fp.iter() {
                if member.contains_all(p.items()) {
                    let u = Strategy::Mcp.utility(p.len(), p.support(), db.len());
                    assert!(
                        u <= g_utility,
                        "case {case}: pattern {p} (U={u}) beats group {:?} (U={g_utility})",
                        g.pattern()
                    );
                }
            }
        }
    }
}
