//! Constrained mining: combining the support threshold with
//! anti-monotone, monotone, succinct and convertible constraints, and
//! letting the session dispatch tighten-vs-relax.
//!
//! ```sh
//! cargo run --release --example constrained_mining
//! ```

use gogreen::core::session::MiningSession;
use gogreen::prelude::*;
use gogreen_constraints::{Constraint, ConstraintSet, ItemAttributes, Pushdown};
use gogreen_datagen::QuestGenerator;

fn main() {
    // A market-basket-like dataset.
    let db = QuestGenerator {
        num_transactions: 20_000,
        num_items: 300,
        avg_transaction_len: 9.0,
        avg_pattern_len: 4.0,
        num_patterns: 80,
        ..QuestGenerator::default()
    }
    .generate();

    // Per-item "prices" for aggregate constraints.
    let mut attrs = ItemAttributes::new();
    let price = attrs.add_column((0..300).map(|i| 1.0 + (i % 50) as f64).collect(), 1.0);

    let mut session = MiningSession::new(db).with_attributes(attrs.clone());

    // Round 1: frequent patterns of 2+ items whose total price stays
    // under 40 (anti-monotone sum + monotone length).
    let cs1 = ConstraintSet::support_only(MinSupport::percent(1.0))
        .with(Constraint::MinLength(2))
        .with(Constraint::MaxSum { attr: price, bound: 40.0 });
    let (r1, rep1) = session.run_with_report(cs1.clone());
    println!("round 1: {:>5} patterns   [{:?}]", r1.len(), rep1.mode);

    // Round 2: relax the support — recycling kicks in; the other
    // constraints are re-applied to the fresh frequent set.
    let cs2 = ConstraintSet::support_only(MinSupport::percent(0.5))
        .with(Constraint::MinLength(2))
        .with(Constraint::MaxSum { attr: price, bound: 40.0 });
    let (r2, rep2) = session.run_with_report(cs2);
    println!("round 2: {:>5} patterns   [{:?}] (support relaxed)", r2.len(), rep2.mode);

    // Round 3: tighten the price budget only — answered by filtering.
    let cs3 = ConstraintSet::support_only(MinSupport::percent(0.5))
        .with(Constraint::MinLength(2))
        .with(Constraint::MaxSum { attr: price, bound: 25.0 });
    let (r3, rep3) = session.run_with_report(cs3.clone());
    println!("round 3: {:>5} patterns   [{:?}] (price tightened)", r3.len(), rep3.mode);
    assert!(r3.len() <= r2.len());

    // Anti-monotone parts can also prune a hand-rolled search:
    let pd = Pushdown::from_constraints(&cs3, &attrs);
    let violating = Pattern::from_ids([10, 45, 99], 3);
    println!(
        "\npushdown check: {} may extend = {}, satisfies budget = {}",
        violating,
        pd.may_extend(violating.len()),
        pd.prefix_ok(violating.items(), &attrs),
    );
}
