//! Incremental mining through recycling (paper §2, extension case 1):
//! the database keeps changing, and each round recycles the previous
//! round's patterns — no negative borders, no assumptions about how much
//! changed.
//!
//! ```sh
//! cargo run --release --example incremental
//! ```

use gogreen::core::incremental::IncrementalMiner;
use gogreen::prelude::*;
use gogreen_datagen::QuestGenerator;
use std::time::Instant;

fn main() {
    let gen = |seed: u64, n: usize| {
        QuestGenerator {
            num_transactions: n,
            num_items: 400,
            avg_transaction_len: 10.0,
            num_patterns: 100,
            seed,
            ..QuestGenerator::default()
        }
        .generate()
    };

    let mut inc = IncrementalMiner::new(gen(1, 30_000)).with_strategy(Strategy::Mcp);

    let t = Instant::now();
    let r1 = inc.mine(MinSupport::percent(1.0));
    println!(
        "day 1: {:>6} tuples → {:>5} patterns in {:.2?}",
        inc.db().len(),
        r1.len(),
        t.elapsed()
    );

    // Day 2: a new batch of transactions arrives.
    inc.insert(gen(2, 6_000).into_transactions());
    let t = Instant::now();
    let r2 = inc.mine(MinSupport::percent(1.0));
    println!(
        "day 2: {:>6} tuples → {:>5} patterns in {:.2?} (recycled day 1)",
        inc.db().len(),
        r2.len(),
        t.elapsed()
    );

    // Day 3: more data AND a relaxed threshold — the case classic
    // incremental techniques handle worst.
    inc.insert(gen(3, 6_000).into_transactions());
    let t = Instant::now();
    let r3 = inc.mine(MinSupport::percent(0.5));
    println!(
        "day 3: {:>6} tuples → {:>5} patterns in {:.2?} (grew + relaxed)",
        inc.db().len(),
        r3.len(),
        t.elapsed()
    );

    // Verify exactness against a from-scratch run.
    let scratch = mine_hmine(inc.db(), MinSupport::percent(0.5));
    assert!(r3.same_patterns_as(&scratch));
    println!("\nexactness check vs from-scratch mining: ok ({} patterns)", scratch.len());
}
