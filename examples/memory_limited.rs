//! Memory-limited mining (paper §3.3 / §5.3): when the mining structure
//! would not fit the budget, the database is parallel-projected to disk
//! partitions and each partition is mined independently.
//!
//! ```sh
//! cargo run --release --example memory_limited
//! ```

use gogreen::prelude::*;
use gogreen::storage::{LimitedHMine, LimitedRecycleHm, MemoryBudget};
use gogreen_datagen::{DatasetPreset, PresetKind};
use std::time::Instant;

fn main() {
    let db = DatasetPreset::new(PresetKind::Connect4, 0.02).generate();
    let xi_old = MinSupport::percent(95.0);
    let xi_new = MinSupport::percent(88.0);
    let fp_old = mine_hmine(&db, xi_old);
    let cdb = Compressor::new(Strategy::Mcp).compress(&db, &fp_old);
    println!(
        "dataset: {} tuples; recycling {} patterns (ratio {:.3})\n",
        db.len(),
        fp_old.len(),
        cdb.stats().ratio()
    );

    for budget_kib in [usize::MAX / 1024, 256, 64] {
        let budget = if budget_kib == usize::MAX / 1024 {
            MemoryBudget::unlimited()
        } else {
            MemoryBudget::bytes(budget_kib * 1024)
        };
        let label = if budget_kib == usize::MAX / 1024 {
            "unlimited".to_owned()
        } else {
            format!("{budget_kib} KiB")
        };

        let t = Instant::now();
        let (base, rep_h) = LimitedHMine::new(budget).mine(&db, xi_new).expect("spill i/o");
        let t_h = t.elapsed();

        let t = Instant::now();
        let (rec, rep_m) = LimitedRecycleHm::new(budget).mine(&cdb, xi_new).expect("spill i/o");
        let t_m = t.elapsed();

        assert!(base.same_patterns_as(&rec));
        println!(
            "budget {label:>9}: H-Mine {t_h:>8.2?} ({} spills, {} KiB disk) | HM-MCP {t_m:>8.2?} ({} spills, {} KiB disk)",
            rep_h.spills,
            rep_h.disk_bytes / 1024,
            rep_m.spills,
            rep_m.disk_bytes / 1024,
        );
    }
    println!("\nAll runs produced the identical pattern set.");
}
