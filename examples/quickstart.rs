//! Quickstart: mine, relax the threshold, recycle.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gogreen::prelude::*;
use gogreen_datagen::{DatasetPreset, PresetKind};
use std::time::Instant;

fn main() {
    // A dense synthetic dataset shaped like Connect-4 (see DESIGN.md §5).
    let db = DatasetPreset::new(PresetKind::Connect4, 0.02).generate();
    println!("dataset: {} tuples, avg length {:.1}", db.len(), db.stats().avg_len);

    // Round 1: the user starts cautiously at 95% support.
    let xi_old = MinSupport::percent(95.0);
    let t = Instant::now();
    let fp_old = mine_hmine(&db, xi_old);
    println!("round 1 (ξ = 95%): {} patterns in {:.2?}", fp_old.len(), t.elapsed());

    // Round 2: too few patterns — relax to 85%. Instead of mining from
    // scratch, recycle round 1's patterns: compress, then mine the
    // compressed database.
    let xi_new = MinSupport::percent(85.0);

    let t = Instant::now();
    let compressed = Compressor::new(Strategy::Mcp).compress(&db, &fp_old);
    let stats = compressed.stats();
    println!(
        "compression: {} groups cover {}/{} tuples, ratio {:.3}",
        stats.num_groups,
        stats.covered_tuples,
        stats.num_tuples,
        stats.ratio()
    );
    let recycled = RecycleHm.mine(&compressed, xi_new);
    let recycled_time = t.elapsed();

    let t = Instant::now();
    let scratch = mine_hmine(&db, xi_new);
    let scratch_time = t.elapsed();

    // Recycling is exact: identical pattern set, usually much faster.
    assert!(recycled.same_patterns_as(&scratch));
    println!(
        "round 2 (ξ = 85%): {} patterns — recycled {:.2?} vs from-scratch {:.2?} ({:.1}x)",
        recycled.len(),
        recycled_time,
        scratch_time,
        scratch_time.as_secs_f64() / recycled_time.as_secs_f64().max(1e-9),
    );
}
