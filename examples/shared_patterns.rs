//! Multi-user recycling (paper §2): "the frequent patterns discovered by
//! one user also provide opportunity for the others to recycle". Several
//! analyst threads publish what they mine into a shared store; later
//! queries recycle the richest published set.
//!
//! ```sh
//! cargo run --release --example shared_patterns
//! ```

use gogreen::core::store::PatternStore;
use gogreen::prelude::*;
use gogreen_datagen::{DatasetPreset, PresetKind};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let db = Arc::new(DatasetPreset::new(PresetKind::Connect4, 0.02).generate());
    let store = Arc::new(PatternStore::new());

    // Three analysts explore the same dataset at different thresholds
    // and publish their results.
    let mut handles = Vec::new();
    for pct in [95.0, 92.0, 90.0] {
        let db = Arc::clone(&db);
        let store = Arc::clone(&store);
        handles.push(std::thread::spawn(move || {
            let ms = MinSupport::percent(pct);
            let fp = mine_hmine(&db, ms);
            println!("analyst @ {pct}%: published {} patterns", fp.len());
            store.publish("connect4", ms.to_absolute(db.len()), fp);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    // A fourth analyst arrives with a much lower threshold. The store
    // hands over the richest prior set (lowest ξ_old) to recycle.
    let target = MinSupport::percent(85.0);
    let (xi_old_abs, recycled) = store.best_for("connect4").expect("published sets");
    println!(
        "\nnew query @ 85%: recycling {} patterns mined at support ≥ {xi_old_abs}",
        recycled.len()
    );

    let t = Instant::now();
    let cdb = Compressor::new(Strategy::Mcp).compress(&db, &recycled);
    let fast = RecycleHm.mine(&cdb, target);
    let recycled_time = t.elapsed();

    let t = Instant::now();
    let scratch = mine_hmine(&db, target);
    let scratch_time = t.elapsed();

    assert!(fast.same_patterns_as(&scratch));
    println!(
        "result: {} patterns — recycled {recycled_time:.2?} vs from-scratch {scratch_time:.2?}",
        fast.len()
    );
}
