//! The paper's motivating scenario: a user iteratively refines the
//! minimum support, and the session transparently decides whether to
//! answer from cache, by filtering, or by recycling.
//!
//! ```sh
//! cargo run --release --example interactive_session
//! ```

use gogreen::core::session::{Engine, MiningSession};
use gogreen::prelude::*;
use gogreen_constraints::ConstraintSet;
use gogreen_datagen::{DatasetPreset, PresetKind};

fn main() {
    let db = DatasetPreset::new(PresetKind::Pumsb, 0.02).generate();
    println!("dataset: {} tuples (pumsb-like)\n", db.len());

    let mut session =
        MiningSession::new(db).with_engine(Engine::HMine).with_strategy(Strategy::Mcp);

    // The user explores: start high, relax twice, jump back up, repeat a
    // query verbatim.
    let thresholds = [92.0, 88.0, 82.0, 90.0, 90.0];
    for pct in thresholds {
        let (patterns, report) =
            session.run_with_report(ConstraintSet::support_only(MinSupport::percent(pct)));
        let how = format!("{:?}", report.mode);
        let compression = report
            .compression
            .map(|c| format!(", compressed ratio {:.3} in {:.2?}", c.ratio, c.duration))
            .unwrap_or_default();
        println!(
            "ξ = {pct:>4}% → {:>6} patterns   [{how:<8} {:>9.2?}{compression}]",
            patterns.len(),
            report.mining_time,
        );
    }

    println!(
        "\nTightened thresholds were answered by filtering; relaxed ones by\n\
         compressing with the previous round's patterns and mining the\n\
         compressed database (paper §2)."
    );
}
